package partition

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestNormalizeFillsDefaults(t *testing.T) {
	n, err := Options{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Coeffs != DefaultCoeffs() {
		t.Errorf("coeffs not defaulted: %+v", n.Coeffs)
	}
	if n.Margin != 1e-4 {
		t.Errorf("margin = %g, want 1e-4", n.Margin)
	}
	if n.MaxIters != 4000 {
		t.Errorf("max iters = %d, want 4000", n.MaxIters)
	}
	if n.Seed != 1 {
		t.Errorf("seed = %d, want 1", n.Seed)
	}
	if n.RefinePasses != 8 {
		t.Errorf("refine passes = %d, want 8", n.RefinePasses)
	}
	if n.InitStep != 0 {
		t.Errorf("K-independent Normalize must leave InitStep unset, got %g", n.InitStep)
	}
}

func TestNormalizeForResolvesInitStep(t *testing.T) {
	n, err := Options{}.NormalizeFor(5)
	if err != nil {
		t.Fatal(err)
	}
	if n.InitStep != 0.25/5 {
		t.Errorf("init step = %g, want %g", n.InitStep, 0.25/5)
	}
	// An explicit InitStep survives.
	n, err = Options{InitStep: 0.125}.NormalizeFor(5)
	if err != nil {
		t.Fatal(err)
	}
	if n.InitStep != 0.125 {
		t.Errorf("explicit init step overwritten: %g", n.InitStep)
	}
}

func TestNormalizeRejectsBadOptions(t *testing.T) {
	bad := []Options{
		{Margin: math.NaN()},
		{Margin: math.Inf(1)},
		{Margin: 1.5},
		{LearnRate: math.NaN()},
		{LearnRate: -0.1},
		{InitStep: math.Inf(-1)},
		{Momentum: 1.0},
		{Workers: -1},
		{MaxIters: -1},
		{RefinePasses: -2},
		{Renormalize: true, ReduceDims: true},
	}
	for i, o := range bad {
		if _, err := o.Normalize(); err == nil {
			t.Errorf("case %d: Normalize accepted invalid options %+v", i, o)
		}
		if _, err := o.Fingerprint(); err == nil {
			t.Errorf("case %d: Fingerprint accepted invalid options %+v", i, o)
		}
	}
}

// TestFingerprintSpellingEquivalence is the cache-key contract: two
// spellings of the same solve hash identically, and execution-only knobs
// (Workers, Tracer, TraceCost) never change the hash.
func TestFingerprintSpellingEquivalence(t *testing.T) {
	base, err := Options{}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	spelled, err := Options{
		Coeffs:       DefaultCoeffs(),
		Margin:       1e-4,
		MaxIters:     4000,
		Seed:         1,
		RefinePasses: 8,
	}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if base != spelled {
		t.Errorf("explicit-default spelling hashes differently:\n zero: %s\n full: %s", base, spelled)
	}
	execOnly, err := Options{Workers: 16, TraceCost: true}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if execOnly != base {
		t.Error("Workers/TraceCost changed the fingerprint; they must be excluded")
	}
}

func TestFingerprintSeparatesSolves(t *testing.T) {
	base, err := Options{}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	distinct := []Options{
		{Seed: 2},
		{Margin: 1e-3},
		{MaxIters: 100},
		{LearnRate: 0.05},
		{InitStep: 0.01},
		{Momentum: 0.5},
		{Renormalize: true},
		{ReduceDims: true},
		{Gradient: GradientPaper},
		{Refine: true},
		{Coeffs: Coeffs{C1: 2, C2: 1, C3: 1, C4: 1}},
	}
	seen := map[string]int{base: -1}
	for i, o := range distinct {
		fp, err := o.Fingerprint()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("case %d collides with case %d: %+v", i, prev, o)
		}
		seen[fp] = i
	}
}

func TestSolveCtxCancellation(t *testing.T) {
	p := randProblem(t, 40, 4, 70, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SolveCtx(ctx, Options{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned %v, want context.Canceled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := p.SolveCtx(dctx, Options{Seed: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired solve returned %v, want context.DeadlineExceeded", err)
	}
}

func TestSolveCtxMatchesSolve(t *testing.T) {
	p := randProblem(t, 40, 4, 70, 3)
	a, err := p.Solve(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SolveCtx(context.Background(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Iters != b.Iters {
		t.Fatalf("iters differ: %d vs %d", a.Iters, b.Iters)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d differs between Solve and SolveCtx", i)
		}
	}
}
