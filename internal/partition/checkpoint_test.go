package partition

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
)

// rebuild clones the problem through the public constructor, simulating a
// fresh process resuming from a serialized snapshot: nothing is shared
// with the instance that checkpointed.
func rebuild(t *testing.T, p *Problem) *Problem {
	t.Helper()
	edges := make([][2]int, len(p.Edges))
	for i, e := range p.Edges {
		edges[i] = [2]int{int(e[0]), int(e[1])}
	}
	q, err := NewProblem(p.Name, p.K, p.Bias, p.Area, edges)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// resultsIdentical compares every Result field bit for bit.
func resultsIdentical(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Labels, b.Labels) {
		t.Errorf("%s: labels differ", tag)
	}
	if !reflect.DeepEqual(a.W, b.W) {
		t.Errorf("%s: W differs", tag)
	}
	if a.Iters != b.Iters || a.Converged != b.Converged {
		t.Errorf("%s: iters/converged %d/%v vs %d/%v", tag, a.Iters, a.Converged, b.Iters, b.Converged)
	}
	if a.Relaxed != b.Relaxed || a.Discrete != b.Discrete {
		t.Errorf("%s: breakdowns differ: %+v/%+v vs %+v/%+v", tag, a.Relaxed, a.Discrete, b.Relaxed, b.Discrete)
	}
	if math.Float64bits(a.StepSize) != math.Float64bits(b.StepSize) {
		t.Errorf("%s: step %v vs %v", tag, a.StepSize, b.StepSize)
	}
	if !reflect.DeepEqual(a.CostTrace, b.CostTrace) {
		t.Errorf("%s: cost traces differ (len %d vs %d)", tag, len(a.CostTrace), len(b.CostTrace))
	}
	if a.RefineMoves != b.RefineMoves {
		t.Errorf("%s: refine moves %d vs %d", tag, a.RefineMoves, b.RefineMoves)
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := &Snapshot{
		Version:     snapshotVersion,
		Name:        "round-trip",
		G:           3,
		K:           2,
		EdgeCount:   4,
		Fingerprint: "abc123",
		Seed:        7,
		Iter:        42,
		RNGDraws:    6,
		Step:        0x1.123456789abcdp-3,
		CostOld:     math.Inf(1),
		W:           []float64{0, 1, 0.25, 0.75, math.Nextafter(0.5, 1), 0.5},
		Velocity:    []float64{1e-300, -1e300, 0, -0, 3.14, 2.71},
		CostTrace:   []float64{9, 8, 7},
	}
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}

	// Nil velocity (momentum off) survives distinct from empty.
	s.Velocity = nil
	got, err = DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Velocity != nil {
		t.Fatalf("nil velocity decoded as %v", got.Velocity)
	}
}

func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	s := &Snapshot{G: 2, K: 2, W: []float64{1, 0, 0, 1}, CostOld: 5}
	clean := EncodeSnapshot(s)
	cases := map[string]func([]byte) []byte{
		"empty":            func(b []byte) []byte { return nil },
		"short":            func(b []byte) []byte { return b[:8] },
		"bad magic":        func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version":      func(b []byte) []byte { b[8] = 99; return b },
		"flipped payload":  func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"truncated":        func(b []byte) []byte { return b[:len(b)-9] },
		"trailing garbage": func(b []byte) []byte { return append(b, 0xaa) },
	}
	for name, mutate := range cases {
		raw := mutate(append([]byte(nil), clean...))
		if _, err := DecodeSnapshot(raw); err == nil {
			t.Errorf("%s: decode accepted damaged input", name)
		}
	}
}

// checkpointAndResume solves to completion collecting snapshots, then for
// each collected snapshot resumes on a freshly rebuilt problem at several
// worker counts and asserts the result is bitwise identical to the
// uninterrupted run.
func checkpointAndResume(t *testing.T, opts Options, every int) {
	t.Helper()
	p := randProblem(t, 60, 4, 120, 3)

	var snaps []*Snapshot
	ckptOpts := opts
	ckptOpts.CheckpointEvery = every
	ckptOpts.Checkpoint = func(s *Snapshot) error {
		snaps = append(snaps, s)
		return nil
	}
	want, err := p.Solve(ckptOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatalf("no checkpoints emitted in %d iterations", want.Iters)
	}

	// The hook must not have perturbed the solve.
	plain, err := p.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, "checkpointing-vs-plain", want, plain)

	workerSweep := []int{1, 2, runtime.NumCPU()}
	for _, si := range []int{0, len(snaps) / 2, len(snaps) - 1} {
		snap := snaps[si]
		// Serialize through the codec: what a killed process leaves on
		// disk is bytes, not a live pointer.
		decoded, err := DecodeSnapshot(EncodeSnapshot(snap))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerSweep {
			fresh := rebuild(t, p)
			resOpts := opts
			resOpts.Workers = workers
			resOpts.Resume = decoded
			got, err := fresh.Solve(resOpts)
			if err != nil {
				t.Fatalf("resume from iter %d at workers %d: %v", snap.Iter, workers, err)
			}
			resultsIdentical(t, fmt.Sprintf("resume@%d/workers=%d", snap.Iter, workers), want, got)
		}
	}
}

func TestResumeBitwiseIdentical(t *testing.T) {
	checkpointAndResume(t, Options{Seed: 5, MaxIters: 120, Margin: 1e-9, TraceCost: true}, 25)
}

func TestResumeBitwiseIdenticalMomentum(t *testing.T) {
	checkpointAndResume(t, Options{Seed: 9, MaxIters: 150, Margin: 1e-9, Momentum: 0.8, TraceCost: true}, 40)
}

func TestResumeBitwiseIdenticalReduceDims(t *testing.T) {
	checkpointAndResume(t, Options{Seed: 2, MaxIters: 100, Margin: 1e-9, ReduceDims: true, Refine: true}, 30)
}

func TestResumeBitwiseIdenticalConverging(t *testing.T) {
	// Defaults converge well before the cap: resume must reproduce the
	// converged stop, not just cap-terminated runs.
	checkpointAndResume(t, Options{Seed: 11}, 10)
}

func TestCheckpointDefaultInterval(t *testing.T) {
	p := randProblem(t, 30, 3, 60, 1)
	iters := 0
	_, err := p.Solve(Options{Seed: 1, MaxIters: 250, Margin: 1e-12,
		Checkpoint: func(s *Snapshot) error { iters = s.Iter; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 || iters%100 != 0 {
		t.Fatalf("default interval: last checkpoint at iteration %d, want a multiple of 100", iters)
	}
}

func TestCheckpointHookErrorAborts(t *testing.T) {
	p := randProblem(t, 30, 3, 60, 1)
	boom := fmt.Errorf("disk full")
	_, err := p.Solve(Options{Seed: 1, MaxIters: 50, Margin: 1e-12, CheckpointEvery: 10,
		Checkpoint: func(s *Snapshot) error { return boom }})
	if err == nil || !contains(err.Error(), "disk full") {
		t.Fatalf("hook error not surfaced: %v", err)
	}
}

func TestResumeRejectsMismatch(t *testing.T) {
	p := randProblem(t, 40, 4, 80, 6)
	var snap *Snapshot
	_, err := p.Solve(Options{Seed: 3, MaxIters: 60, Margin: 1e-12, CheckpointEvery: 20,
		Checkpoint: func(s *Snapshot) error { snap = s; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot collected")
	}

	// Different result-relevant options: rejected via fingerprint.
	if _, err := p.Solve(Options{Seed: 4, MaxIters: 60, Margin: 1e-12, Resume: snap}); err == nil {
		t.Error("resume with a different seed accepted")
	}
	if _, err := p.Solve(Options{Seed: 3, MaxIters: 60, Margin: 1e-12, Momentum: 0.5, Resume: snap}); err == nil {
		t.Error("resume with momentum flipped on accepted")
	}
	// Workers is execution-only: same fingerprint, accepted.
	if _, err := p.Solve(Options{Seed: 3, MaxIters: 60, Margin: 1e-12, Workers: 2, Resume: snap}); err != nil {
		t.Errorf("resume with different Workers rejected: %v", err)
	}
	// Different problem shape: rejected.
	q := randProblem(t, 41, 4, 80, 6)
	if _, err := q.Solve(Options{Seed: 3, MaxIters: 60, Margin: 1e-12, Resume: snap}); err == nil {
		t.Error("resume on a different problem accepted")
	}
	// Snapshot claiming more iterations than the cap: rejected.
	bad := *snap
	bad.Iter = 10_000
	if _, err := p.Solve(Options{Seed: 3, MaxIters: 60, Margin: 1e-12, Resume: &bad}); err == nil {
		t.Error("resume past MaxIters accepted")
	}
	// Non-finite matrix entry: rejected.
	bad = *snap
	bad.W = append([]float64(nil), snap.W...)
	bad.W[0] = math.NaN()
	if _, err := p.Solve(Options{Seed: 3, MaxIters: 60, Margin: 1e-12, Resume: &bad}); err == nil {
		t.Error("resume with NaN matrix accepted")
	}
}

func TestValidateRejectsNegativeCheckpointEvery(t *testing.T) {
	p := randProblem(t, 20, 2, 30, 1)
	if _, err := p.Solve(Options{CheckpointEvery: -1}); err == nil {
		t.Fatal("negative CheckpointEvery accepted")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// FuzzSnapshotDecode holds DecodeSnapshot to its no-panic, no-absurd-
// allocation contract on arbitrary bytes, and to exact round-tripping on
// bytes that do decode.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(EncodeSnapshot(&Snapshot{G: 2, K: 2, W: []float64{1, 0, 0, 1}}))
	f.Add(EncodeSnapshot(&Snapshot{
		Name: "fuzz", G: 3, K: 3, EdgeCount: 2, Fingerprint: "fp", Seed: -1,
		Iter: 5, RNGDraws: 9, Step: 0.125, CostOld: 2.5,
		W:        make([]float64, 9),
		Velocity: make([]float64, 9),
		CostTrace: []float64{
			1, 2, 3,
		},
	}))
	long := EncodeSnapshot(&Snapshot{G: 4, K: 2, W: make([]float64, 8)})
	f.Add(long[:len(long)-3])
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := DecodeSnapshot(raw)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode canonically: encode(decode(x))
		// is a fixed point byte for byte. Bytes, not DeepEqual — the
		// payload may legitimately carry NaN bit patterns.
		enc := EncodeSnapshot(s)
		back, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(enc, EncodeSnapshot(back)) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}
