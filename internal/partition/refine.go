package partition

// Refine greedily improves a discrete assignment in place by single-gate
// moves, minimizing the discrete objective c1·F1 + c2·F2 + c3·F3 (F4 is
// constant over integer assignments and drops out of every move delta).
//
// The pass sweeps all gates in index order; for each gate it evaluates the
// cost delta of moving it to every other plane and applies the best strictly
// improving move. Sweeps repeat until a sweep makes no move or maxPasses is
// reached. Returns the total number of moves applied.
//
// A move's delta is computed incrementally in O(deg(i) + K):
//
//	ΔF1 = Σ_{j~i} ((q − l_j)⁴ − (p − l_j)⁴) / N1
//	ΔF2 = ((B_p − b_i − B̄)² + (B_q + b_i − B̄)² − (B_p − B̄)² − (B_q − B̄)²) / (K·N2)
//
// and analogously for F3, where p→q is the move and B̄ = B_cir/K is constant.
func (p *Problem) Refine(labels []int, c Coeffs, maxPasses int) int {
	return p.refineTraced(labels, c, maxPasses, nil)
}

// refineTraced is Refine with an optional per-sweep callback: onPass is
// invoked after every executed sweep with its 1-based index and move count
// (including the terminal zero-move sweep, which shows refinement actually
// converged rather than hitting the pass cap).
func (p *Problem) refineTraced(labels []int, c Coeffs, maxPasses int, onPass func(pass, moves int)) int {
	if maxPasses <= 0 {
		maxPasses = 8
	}
	// Incidence lists: for each gate, its neighbors (both directions,
	// duplicates preserved — each connection counts separately in F1). For
	// weighted problems a parallel per-neighbor weight list carries each
	// edge's multiplicity into the move delta.
	adj := make([][]int32, p.G)
	var wadj [][]float64
	if p.EdgeWeight != nil {
		wadj = make([][]float64, p.G)
	}
	for i, e := range p.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
		if wadj != nil {
			we := p.EdgeWeight[i]
			wadj[e[0]] = append(wadj[e[0]], we)
			wadj[e[1]] = append(wadj[e[1]], we)
		}
	}
	bk, ak := p.PlaneTotals(labels)

	pow4 := func(x float64) float64 { x *= x; return x * x }

	totalMoves := 0
	for pass := 0; pass < maxPasses; pass++ {
		moves := 0
		for i := 0; i < p.G; i++ {
			from := labels[i]
			bi, ai := p.Bias[i], p.Area[i]

			// F1 contribution of gate i's connections for each candidate
			// plane, computed once over the neighbor list.
			// wire[q] = Σ_j (q − l_j)⁴ in label units (planes are 0-based;
			// distances are invariant to the +1 shift).
			bestDelta := 0.0
			bestTo := -1
			for to := 0; to < p.K; to++ {
				if to == from {
					continue
				}
				var dWire float64
				if wadj == nil {
					for _, j := range adj[i] {
						lj := float64(labels[j])
						dWire += pow4(float64(to)-lj) - pow4(float64(from)-lj)
					}
				} else {
					wl := wadj[i]
					for n, j := range adj[i] {
						lj := float64(labels[j])
						dWire += wl[n] * (pow4(float64(to)-lj) - pow4(float64(from)-lj))
					}
				}
				d1 := c.C1 * dWire / p.N1

				bp := bk[from] - p.MeanBias
				bq := bk[to] - p.MeanBias
				d2 := c.C2 * ((bp-bi)*(bp-bi) + (bq+bi)*(bq+bi) - bp*bp - bq*bq) / (float64(p.K) * p.N2)

				ap := ak[from] - p.MeanArea
				aq := ak[to] - p.MeanArea
				d3 := c.C3 * ((ap-ai)*(ap-ai) + (aq+ai)*(aq+ai) - ap*ap - aq*aq) / (float64(p.K) * p.N3)

				delta := d1 + d2 + d3
				if delta < bestDelta-1e-15 {
					bestDelta = delta
					bestTo = to
				}
			}
			if bestTo >= 0 {
				bk[from] -= bi
				ak[from] -= ai
				bk[bestTo] += bi
				ak[bestTo] += ai
				labels[i] = bestTo
				moves++
			}
		}
		totalMoves += moves
		if onPass != nil {
			onPass(pass+1, moves)
		}
		if moves == 0 {
			break
		}
	}
	return totalMoves
}
