package partition

import (
	"math"
	"strings"
	"testing"
)

func termsProblem(t *testing.T) *Problem {
	t.Helper()
	bias := []float64{1, 2, 3, 4, 5, 6}
	area := []float64{0.01, 0.01, 0.01, 0.01, 0.01, 0.01}
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}
	p, err := NewProblem("terms-test", 3, bias, area, edges)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTermValidationUnknownName (satellite): an unknown term name is
// rejected with a message listing the registered vocabulary — the options
// analogue of the serve layer's `?status=` 400 message.
func TestTermValidationUnknownName(t *testing.T) {
	p := termsProblem(t)
	_, err := p.Solve(Options{MaxIters: 4, Terms: []TermSpec{{Name: "warp_drive"}}})
	if err == nil {
		t.Fatal("unknown term accepted")
	}
	msg := err.Error()
	for _, want := range []string{"warp_drive", "registered terms", "f1", "f4"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestTermValidationRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name  string
		specs []TermSpec
		want  string
	}{
		{"duplicate", []TermSpec{{Name: "f1"}, {Name: "f1", Weight: 2}}, "duplicate term"},
		{"nan weight", []TermSpec{{Name: "f2", Weight: math.NaN()}}, "weight"},
		{"inf weight", []TermSpec{{Name: "f2", Weight: math.Inf(1)}}, "weight"},
		{"negative weight", []TermSpec{{Name: "f3", Weight: -1}}, "weight"},
		{"nan param", []TermSpec{{Name: "f2", Param: math.NaN()}}, "param"},
		{"negative param", []TermSpec{{Name: "f2", Param: -5}}, "param"},
	}
	p := termsProblem(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := p.Solve(Options{MaxIters: 4, Terms: tc.specs})
			if err == nil {
				t.Fatalf("specs %+v accepted", tc.specs)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTermFoldEquivalence: spelling the paper coefficients as f1–f4 term
// specs normalizes to scaled Coeffs plus an empty term list — the same
// fingerprint (and so the same cache key and checkpoint identity) as
// spelling Coeffs directly.
func TestTermFoldEquivalence(t *testing.T) {
	viaTerms := Options{Terms: []TermSpec{{Name: "f2", Weight: 0.5}, {Name: "f4", Weight: 2}}}
	direct := Options{Coeffs: Coeffs{C1: 1.0, C2: 0.25, C3: 0.5, C4: 2.0}}
	fp1, err := viaTerms.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := direct.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("f-term spelling fingerprint %s != direct coeffs fingerprint %s", fp1, fp2)
	}
	n, err := viaTerms.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Terms) != 0 {
		t.Fatalf("f-terms survived normalization: %+v", n.Terms)
	}
	// The default set (all weights 1, or 0 = default) is the identity: it
	// folds to the default coefficients and the legacy fingerprint.
	defaults := Options{Terms: []TermSpec{{Name: "f1"}, {Name: "f2"}, {Name: "f3"}, {Name: "f4"}}}
	fpDef, err := defaults.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpLegacy, err := Options{}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpDef != fpLegacy {
		t.Fatalf("default term set fingerprint %s != legacy fingerprint %s", fpDef, fpLegacy)
	}
}

// TestRegisterTermNameRejectsDelimiters: term names flow into the
// fingerprint byte string, so the delimiter characters are forbidden.
func TestRegisterTermNameRejectsDelimiters(t *testing.T) {
	for _, name := range []string{"", "a|b", "a:b", "a,b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterTermName(%q) did not panic", name)
				}
			}()
			RegisterTermName(name, nil)
		}()
	}
}
