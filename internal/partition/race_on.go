//go:build race

package partition

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count guard skips itself under -race, where instrumentation
// changes allocation behavior.
const raceEnabled = true
