package partition

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Cost-term registry plumbing (DESIGN.md §16). The solver's objective is a
// linear combination of registered *terms*. The four paper terms F1–F4 are
// built in; extension packages (internal/terms) register regime terms —
// xeSFQ, ERSFQ current limits, timing criticality — under additional names.
//
// partition itself stores only the *names* plus a canonicalization hook per
// term: enough to validate Options.Terms, normalize it, and fold it into
// the options fingerprint. What a regime term *does* to a problem instance
// (bias rescaling, edge dropping/weighting, per-plane penalty tables) is
// compiled by the registering package before the Problem is built — the
// hot loop only ever sees precomputed tables (Problem.PlaneTerms,
// Problem.EdgeWeight, rescaled Bias), never an interface call.

// TermSpec selects one cost term by name with an optional weight and a
// term-specific parameter. Zero Weight means the term's default weight
// (1); zero Param means the term's default parameter (e.g. 100 mA for the
// current-limit term). Negative, NaN, or Inf values are validation errors.
type TermSpec struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight,omitempty"`
	Param  float64 `json:"param,omitempty"`
}

// termCanon validates and fills the defaults of one spec. Registered per
// term name; must be a pure function (it runs inside Normalize and its
// output feeds the options fingerprint).
type termCanon func(TermSpec) (TermSpec, error)

var termReg = struct {
	sync.RWMutex
	canon map[string]termCanon
}{canon: map[string]termCanon{}}

// RegisterTermName registers a cost-term name with its canonicalization
// hook so Options.Terms referencing it validates. Registering packages
// (internal/terms) call this from init; re-registering a name replaces its
// hook. A nil canon gets the default hook (weight 0 → 1, param must be
// ≥ 0).
func RegisterTermName(name string, canon termCanon) {
	if name == "" || strings.ContainsAny(name, "|:,") {
		panic(fmt.Sprintf("partition: invalid term name %q", name))
	}
	if canon == nil {
		canon = defaultTermCanon
	}
	termReg.Lock()
	termReg.canon[name] = canon
	termReg.Unlock()
}

// RegisteredTermNames returns every registered term name, sorted — the
// vocabulary validation errors cite.
func RegisteredTermNames() []string {
	termReg.RLock()
	names := make([]string, 0, len(termReg.canon))
	for n := range termReg.canon {
		names = append(names, n)
	}
	termReg.RUnlock()
	sort.Strings(names)
	return names
}

func lookupTermCanon(name string) (termCanon, bool) {
	termReg.RLock()
	c, ok := termReg.canon[name]
	termReg.RUnlock()
	return c, ok
}

// defaultTermCanon fills the shared defaults: weight 0 means 1.
func defaultTermCanon(t TermSpec) (TermSpec, error) {
	if t.Weight == 0 {
		t.Weight = 1
	}
	return t, nil
}

// The four paper terms are registered here so a bare partition import
// validates them; their canonical weights fold into Coeffs in withDefaults
// (foldTerms below), which is what keeps the default term set on the
// historical kernel path bit for bit.
func init() {
	for _, name := range []string{"f1", "f2", "f3", "f4"} {
		RegisterTermName(name, nil)
	}
}

// validateTermSpecs rejects unknown and duplicate names and non-finite or
// negative weights/params, citing the registered vocabulary — the options
// analogue of the serve layer's `?status=` 400 message.
func validateTermSpecs(specs []TermSpec) error {
	if len(specs) == 0 {
		return nil
	}
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	seen := make(map[string]bool, len(specs))
	for _, t := range specs {
		canon, ok := lookupTermCanon(t.Name)
		if !ok {
			return fmt.Errorf("partition: unknown term %q; registered terms: %s",
				t.Name, strings.Join(RegisteredTermNames(), ", "))
		}
		if seen[t.Name] {
			return fmt.Errorf("partition: duplicate term %q (each term may appear once)", t.Name)
		}
		seen[t.Name] = true
		if !finite(t.Weight) || t.Weight < 0 {
			return fmt.Errorf("partition: term %q weight %g must be a finite value ≥ 0 (0 = default)", t.Name, t.Weight)
		}
		if !finite(t.Param) || t.Param < 0 {
			return fmt.Errorf("partition: term %q param %g must be a finite value ≥ 0 (0 = default)", t.Name, t.Param)
		}
		if _, err := canon(t); err != nil {
			return fmt.Errorf("partition: term %q: %w", t.Name, err)
		}
	}
	return nil
}

// foldTerms canonicalizes a validated term list against the given (already
// defaulted) coefficients: the paper terms f1–f4 fold multiplicatively
// into Coeffs and disappear from the list, the remaining regime terms get
// their defaults filled and sort by name. The result is the canonical form
// Normalize and Fingerprint see — a term set spelled only with f1–f4
// weights normalizes to scaled Coeffs plus an empty Terms list, which is
// byte-identical (and fingerprint-identical) to spelling the Coeffs
// directly. Idempotent: folding a folded result changes nothing.
func foldTerms(c Coeffs, specs []TermSpec) (Coeffs, []TermSpec) {
	if len(specs) == 0 {
		return c, nil
	}
	rest := make([]TermSpec, 0, len(specs))
	for _, t := range specs {
		canon, ok := lookupTermCanon(t.Name)
		if ok {
			if ct, err := canon(t); err == nil {
				t = ct
			}
		}
		switch t.Name {
		case "f1":
			c.C1 *= t.Weight
		case "f2":
			c.C2 *= t.Weight
		case "f3":
			c.C3 *= t.Weight
		case "f4":
			c.C4 *= t.Weight
		default:
			rest = append(rest, t)
		}
	}
	if len(rest) == 0 {
		return c, nil
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	return c, rest
}

// PlaneTermKind dispatches a compiled per-plane penalty statically — the
// finalize pass switches on the kind, so adding regime terms never puts an
// interface call in the descent loop.
type PlaneTermKind int

const (
	// PlaneCurrentLimit penalizes planes whose bias sum exceeds Limit mA:
	// Weight · Σ_k max(0, B_k − Limit)² / (K·Limit²). The quadratic hinge
	// is zero (cost and gradient) while every plane fits, so a feasible
	// descent is untouched by the term.
	PlaneCurrentLimit PlaneTermKind = iota
)

// PlaneTerm is one compiled per-plane penalty evaluated over the per-plane
// bias/area sums the fused gate sweep already produces — regime terms that
// reduce to "a function of B_k / A_k" cost one O(K) finalize loop, not a
// kernel change.
type PlaneTerm struct {
	Kind   PlaneTermKind
	Weight float64
	Limit  float64 // mA for PlaneCurrentLimit
}

// planeTermCost evaluates the compiled per-plane penalties at the current
// per-plane bias sums. Called only when len(p.PlaneTerms) > 0, so the
// default term set never touches (or perturbs) the historical totals.
func (p *Problem) planeTermCost(bk []float64) float64 {
	var extra float64
	for _, t := range p.PlaneTerms {
		switch t.Kind {
		case PlaneCurrentLimit:
			norm := float64(p.K) * t.Limit * t.Limit
			var s float64
			for _, b := range bk {
				if over := b - t.Limit; over > 0 {
					s += over * over
				}
			}
			extra += t.Weight * s / norm
		}
	}
	return extra
}

// planeTermFactors adds the per-plane penalty gradients into the F2-style
// bias row factors: d(extra)/dw_{i,k} = b_i · 2·Weight·max(0,B_k−L)/(K·L²),
// and the row pass already multiplies bf[k] by b_i — so plane terms ride
// the existing fused gradient+update fast path unchanged.
func (p *Problem) planeTermFactors(bf, bk []float64) {
	for _, t := range p.PlaneTerms {
		switch t.Kind {
		case PlaneCurrentLimit:
			scale := 2 * t.Weight / (float64(p.K) * t.Limit * t.Limit)
			for k, b := range bk {
				if over := b - t.Limit; over > 0 {
					bf[k] += scale * over
				}
			}
		}
	}
}

// finishBreakdown combines the four paper terms and, when the problem
// carries compiled plane terms, folds their penalty into Extra/Total. The
// guard keeps the no-term path bitwise identical: even adding an exact 0.0
// could flip a −0.0 total.
func (p *Problem) finishBreakdown(c Coeffs, f1, f2, f3, f4 float64, bk []float64) Breakdown {
	bd := c.combine(f1, f2, f3, f4)
	if len(p.PlaneTerms) > 0 {
		bd.Extra = p.planeTermCost(bk)
		bd.Total += bd.Extra
	}
	return bd
}
