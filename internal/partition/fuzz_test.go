package partition

import (
	"context"
	"math"
	"sync"
	"testing"
)

// fuzzProblem is the small fixed circuit every FuzzSolveOptions input runs
// against: a 24-gate, K=3 instance with mixed bias/area and a connected
// edge set. Built once — Problem is immutable and fuzz workers run
// concurrently.
var fuzzProblem = sync.OnceValue(func() *Problem {
	const g = 24
	bias := make([]float64, g)
	area := make([]float64, g)
	for i := 0; i < g; i++ {
		bias[i] = 0.5 + float64(i%5)*0.3
		area[i] = 0.001 + float64(i%7)*0.002
	}
	var edges [][2]int
	for i := 1; i < g; i++ {
		edges = append(edges, [2]int{i - 1, i})
	}
	for i := 0; i+5 < g; i += 3 {
		edges = append(edges, [2]int{i, i + 5})
	}
	p, err := NewProblem("fuzz", 3, bias, area, edges)
	if err != nil {
		panic(err)
	}
	return p
})

// FuzzSolveOptions drives Solve and SolvePortfolio with arbitrary Options
// field combinations — margin, momentum, learn rate, worker counts,
// restarts, and the Renormalize/ReduceDims arms — and asserts the engine
// either rejects the options with an error or returns a well-formed result:
// no panics, every label in [0, K), and every entry of W finite in [0, 1].
// Without -fuzz the seed corpus runs as a regular test.
func FuzzSolveOptions(f *testing.F) {
	f.Add(1e-4, 0.0, 0.0, 0.0, 0, 1, false, false, false, int64(1))
	f.Add(1e-3, 0.9, 0.5, 0.1, 1, 3, false, false, true, int64(7))
	f.Add(0.5, 0.0, 1.0, 0.0, 8, 2, true, false, false, int64(42))
	f.Add(1e-6, 0.5, 0.0, 0.25, 3, 4, false, true, false, int64(-9))
	f.Add(-1.0, -0.5, -2.0, -1.0, -4, -2, true, true, true, int64(0)) // invalid arms
	f.Add(math.NaN(), math.Inf(1), math.NaN(), math.Inf(-1), 1000000, 9, false, false, false, int64(3))
	f.Fuzz(func(t *testing.T, margin, momentum, learnRate, initStep float64,
		workers, restarts int, renormalize, reduceDims, refine bool, seed int64) {
		p := fuzzProblem()
		// Bound the knobs that only control how much work is done, not
		// which code paths run: huge worker counts would spawn goroutine
		// armies and huge restart counts unbounded work. Everything else —
		// including negative, NaN, and infinite values — goes straight to
		// the solver, which must either error or produce a valid result.
		if workers > 16 {
			workers = 16
		}
		if restarts > 6 {
			restarts = 6
		}
		if learnRate > 10 || learnRate < -10 {
			// Keep finite-but-astronomical rates from overflowing w into
			// NaN via Inf·0 — validation only rejects non-finite values.
			learnRate = math.Mod(learnRate, 10)
		}
		opts := Options{
			Margin:      margin,
			Momentum:    momentum,
			LearnRate:   learnRate,
			InitStep:    initStep,
			Workers:     workers,
			Seed:        seed,
			Renormalize: renormalize,
			ReduceDims:  reduceDims,
			Refine:      refine,
			MaxIters:    30,
		}
		if reduceDims {
			opts.Gradient = GradientPaper
		}
		check := func(res *Result) {
			t.Helper()
			for i, lb := range res.Labels {
				if lb < 0 || lb >= p.K {
					t.Fatalf("label[%d] = %d outside [0, %d)", i, lb, p.K)
				}
			}
			for i := 0; i < p.G; i++ {
				row := res.W[i*p.K : (i+1)*p.K]
				for k, v := range row {
					if math.IsNaN(v) || v < 0 || v > 1 {
						t.Fatalf("w[%d,%d] = %v outside [0, 1]", i, k, v)
					}
				}
			}
		}
		res, err := p.Solve(opts)
		if err == nil {
			check(res)
		}
		pf, err := p.SolvePortfolio(context.Background(), opts,
			PortfolioOptions{Restarts: restarts, Workers: workers})
		if err == nil {
			check(pf.Best)
			if len(pf.Seeds) != restarts {
				t.Fatalf("portfolio returned %d summaries for %d restarts", len(pf.Seeds), restarts)
			}
		}
	})
}
