package partition

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSolveBasicContract(t *testing.T) {
	p := randProblem(t, 40, 4, 70, 1)
	res, err := p.Solve(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != p.G {
		t.Fatalf("labels length %d, want %d", len(res.Labels), p.G)
	}
	for i, lb := range res.Labels {
		if lb < 0 || lb >= p.K {
			t.Fatalf("label[%d] = %d outside [0,%d)", i, lb, p.K)
		}
	}
	if res.Iters <= 0 {
		t.Error("no iterations performed")
	}
	if res.StepSize <= 0 {
		t.Error("non-positive step size")
	}
	for _, v := range res.W {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("w entry %g outside [0,1]", v)
		}
	}
}

func TestSolveDeterministicForSeed(t *testing.T) {
	p := randProblem(t, 30, 3, 50, 2)
	a, err := p.Solve(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Solve(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d differs between identical runs", i)
		}
	}
	if a.Iters != b.Iters {
		t.Errorf("iteration counts differ: %d vs %d", a.Iters, b.Iters)
	}
	c, err := p.Solve(Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Labels {
		if a.Labels[i] != c.Labels[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: different seeds produced identical labelings (possible but unlikely)")
	}
}

func TestSolveReducesCost(t *testing.T) {
	p := randProblem(t, 60, 4, 100, 3)
	res, err := p.Solve(Options{Seed: 3, TraceCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CostTrace) < 2 {
		t.Fatalf("trace too short: %d", len(res.CostTrace))
	}
	first, last := res.CostTrace[0], res.CostTrace[len(res.CostTrace)-1]
	if last >= first {
		t.Errorf("cost did not decrease: %g → %g", first, last)
	}
	// The trace records one entry per executed iteration.
	if len(res.CostTrace) != res.Iters && len(res.CostTrace) != res.Iters+1 {
		t.Errorf("trace length %d inconsistent with %d iterations", len(res.CostTrace), res.Iters)
	}
}

func TestSolveRespectsMaxIters(t *testing.T) {
	p := randProblem(t, 50, 4, 80, 4)
	res, err := p.Solve(Options{Seed: 1, MaxIters: 10, Margin: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 10 {
		t.Errorf("ran %d iterations with MaxIters 10", res.Iters)
	}
	if res.Converged {
		t.Error("cannot have converged with margin 1e-12 in 10 iterations")
	}
}

func TestSolveInvalidMargin(t *testing.T) {
	p := randProblem(t, 10, 2, 15, 5)
	if _, err := p.Solve(Options{Margin: 1.5}); err == nil {
		t.Error("margin ≥ 1 accepted")
	}
}

// TestSolveOptionValidation pins down every nonsensical Options combination
// the solver must reject with a descriptive error instead of silently
// coercing (the historical behavior for most of them).
func TestSolveOptionValidation(t *testing.T) {
	p := randProblem(t, 10, 2, 15, 5)
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		opts Options
		want string // substring the error must contain
	}{
		{"negative workers", Options{Workers: -1}, "workers"},
		{"negative margin", Options{Margin: -0.1}, "margin"},
		{"NaN margin", Options{Margin: nan}, "margin"},
		{"margin one", Options{Margin: 1}, "margin"},
		{"negative max iters", Options{MaxIters: -5}, "max iterations"},
		{"negative learn rate", Options{LearnRate: -0.5}, "learn rate"},
		{"infinite learn rate", Options{LearnRate: inf}, "learn rate"},
		{"negative init step", Options{InitStep: -0.1}, "init step"},
		{"NaN init step", Options{InitStep: nan}, "init step"},
		{"negative momentum", Options{Momentum: -0.2}, "momentum"},
		{"momentum one", Options{Momentum: 1}, "momentum"},
		{"NaN momentum", Options{Momentum: nan}, "momentum"},
		{"renormalize with reduce-dims", Options{Renormalize: true, ReduceDims: true}, "mutually exclusive"},
		{"negative refine passes", Options{RefinePasses: -1}, "refine passes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := p.Solve(tc.opts)
			if err == nil {
				t.Fatalf("options %+v accepted", tc.opts)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSolveValidOptionBoundaries confirms the validation does not reject
// the meaningful boundary values (zero means "default" throughout).
func TestSolveValidOptionBoundaries(t *testing.T) {
	p := randProblem(t, 10, 2, 15, 5)
	for _, opts := range []Options{
		{},
		{Workers: 0},
		{Workers: 1},
		{Workers: 64, MaxIters: 5},
		{Momentum: 0.99, MaxIters: 5},
		{ReduceDims: true, MaxIters: 5},
		{Renormalize: true, MaxIters: 5},
	} {
		if _, err := p.Solve(opts); err != nil {
			t.Errorf("valid options %+v rejected: %v", opts, err)
		}
	}
}

func TestSolveRenormalizeKeepsRowsStochastic(t *testing.T) {
	p := randProblem(t, 25, 3, 40, 6)
	res, err := p.Solve(Options{Seed: 1, Renormalize: true, MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.G; i++ {
		var sum float64
		for k := 0; k < p.K; k++ {
			sum += res.W[i*p.K+k]
		}
		// Rows with all-zero entries cannot be renormalized; anything else
		// must sum to 1.
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %g after renormalized run", i, sum)
		}
	}
}

func TestSolvePaperGradientMode(t *testing.T) {
	p := randProblem(t, 40, 3, 70, 7)
	res, err := p.Solve(Options{Seed: 1, Gradient: GradientPaper, MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, lb := range res.Labels {
		if lb < 0 || lb >= p.K {
			t.Fatal("paper-mode labels out of range")
		}
	}
}

func TestSolveWithRefineNotWorse(t *testing.T) {
	p := randProblem(t, 80, 5, 140, 8)
	plain, err := p.Solve(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := p.Solve(Options{Seed: 2, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultCoeffs()
	if refined.Discrete.Total > plain.Discrete.Total+1e-12 {
		t.Errorf("refinement worsened discrete cost: %g → %g",
			p.DiscreteCost(plain.Labels, c).Total, p.DiscreteCost(refined.Labels, c).Total)
	}
}

func TestSolveSmallK2(t *testing.T) {
	// Two cliques joined by one edge: K=2 descent should find a cut that
	// puts few edges across (F1 pressure) while balancing bias.
	var edges [][2]int
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	for i := 8; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	edges = append(edges, [2]int{0, 8})
	bias := make([]float64, 16)
	area := make([]float64, 16)
	for i := range bias {
		bias[i], area[i] = 1, 1
	}
	p, err := NewProblem("cliques", 2, bias, area, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Wire-heavy coefficients isolate the F1 term's steering (the balanced
	// defaults trade cut quality for bias/area balance).
	co := Coeffs{C1: 4, C2: 0.5, C3: 0.5, C4: 1}
	best := math.Inf(1)
	for seed := int64(1); seed <= 5; seed++ {
		res, err := p.Solve(Options{Seed: seed, Coeffs: co})
		if err != nil {
			t.Fatal(err)
		}
		cut := 0
		for _, e := range edges {
			if res.Labels[e[0]] != res.Labels[e[1]] {
				cut++
			}
		}
		if float64(cut) < best {
			best = float64(cut)
		}
	}
	// The clean cut crosses exactly 1 edge; accept a small miss since the
	// method is a heuristic, but anything above 5 means the wire term is
	// not steering (random would cut ~28).
	if best > 5 {
		t.Errorf("best cut over 5 seeds = %g, want ≤ 5 (clean cut is 1)", best)
	}
}

func TestRefineImprovesRandomAssignment(t *testing.T) {
	p := randProblem(t, 100, 5, 180, 9)
	rng := rand.New(rand.NewSource(1))
	labels := make([]int, p.G)
	for i := range labels {
		labels[i] = rng.Intn(p.K)
	}
	c := DefaultCoeffs()
	before := p.DiscreteCost(labels, c).Total
	moves := p.Refine(labels, c, 10)
	after := p.DiscreteCost(labels, c).Total
	if moves == 0 {
		t.Error("refinement made no moves from a random start")
	}
	if after >= before {
		t.Errorf("refinement did not improve: %g → %g", before, after)
	}
	for _, lb := range labels {
		if lb < 0 || lb >= p.K {
			t.Fatal("refined labels out of range")
		}
	}
}

func TestRefineFixedPointIsStable(t *testing.T) {
	p := randProblem(t, 60, 4, 110, 10)
	labels := make([]int, p.G)
	rng := rand.New(rand.NewSource(2))
	for i := range labels {
		labels[i] = rng.Intn(p.K)
	}
	c := DefaultCoeffs()
	p.Refine(labels, c, 50)
	// A second refinement from the fixed point must make zero moves.
	if moves := p.Refine(labels, c, 50); moves != 0 {
		t.Errorf("refinement at fixed point still made %d moves", moves)
	}
}

func TestRefineDeltaConsistency(t *testing.T) {
	// The incremental deltas inside Refine must agree with full
	// recomputation: after refinement, recompute plane totals from scratch
	// and compare against incremental bookkeeping via the cost value.
	p := randProblem(t, 50, 4, 90, 11)
	labels := make([]int, p.G)
	rng := rand.New(rand.NewSource(3))
	for i := range labels {
		labels[i] = rng.Intn(p.K)
	}
	c := DefaultCoeffs()
	start := p.DiscreteCost(labels, c).Total
	work := append([]int(nil), labels...)
	p.Refine(work, c, 1)
	end := p.DiscreteCost(work, c).Total
	if end > start+1e-12 {
		t.Errorf("single refinement pass increased true cost: %g → %g", start, end)
	}
}
