package partition

import "gpp/internal/obs"

// Solver metrics, registered on the process-wide registry (served by the
// CLIs' -metrics-addr). All updates happen once per solve — never inside the
// iteration loop — so instrumentation costs nothing on the hot path.
var (
	mSolves = obs.Default().Counter("gpp_solver_solves_total",
		"completed Algorithm-1 solves")
	mIters = obs.Default().Counter("gpp_solver_iterations_total",
		"gradient iterations across all solves")
	mConverged = obs.Default().Counter("gpp_solver_converged_total",
		"solves stopped by the margin criterion (rather than the iteration cap)")
	mRestarts = obs.Default().Counter("gpp_solver_restarts_total",
		"portfolio restarts completed")
	mRefineMoves = obs.Default().Counter("gpp_solver_refine_moves_total",
		"gates moved by greedy refinement")
	mItersPerSolve = obs.Default().Histogram("gpp_solver_iters_per_solve",
		[]float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000},
		"iteration count distribution per solve")
)
