package partition

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"gpp/internal/pool"
)

// incrProblem builds a multi-shard random problem for the incremental
// parity checks. isolateTail confines every edge (and all bias/area) to a
// core no larger than one gate shard, leaving an edge-free zero-attribute
// tail: under F4 alone those rows clamp to one-hot vertices and then stop
// changing bitwise (the outward-pushing gradient keeps them pinned), so
// the tail's shards go clean and the planner's skip masks engage while the
// edged core keeps descending.
func incrProblem(t testing.TB, seed int64, g, e, k int, isolateTail bool) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bias := make([]float64, g)
	area := make([]float64, g)
	span := g
	if isolateTail {
		span = g / 2
		if span > gateChunk {
			span = gateChunk
		}
	}
	for i := range bias {
		if i < span || !isolateTail {
			bias[i] = 0.2 + rng.Float64()
			area[i] = 0.001 + 0.004*rng.Float64()
		}
	}
	var edges [][2]int
	if span >= 2 {
		for len(edges) < e {
			a, b := rng.Intn(span), rng.Intn(span)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
	}
	p, err := NewProblem("incr-fuzz", k, bias, area, edges)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// FuzzIncrementalParity is the exactness check for the incremental
// cost-evaluation tier (DESIGN.md §15): for arbitrary problem shapes,
// option knobs, and dirty-set evolutions — including learn rates chosen to
// slam rows into the [0,1] clamp boundaries and frozen edge-free tails
// that actually engage the skip masks — a solve with the incremental
// planner enabled must be bitwise identical to the full-sweep solve, at
// multiple worker counts. Without -fuzz the seed corpus runs as a regular
// test (and so under `make check`).
func FuzzIncrementalParity(f *testing.F) {
	f.Add(int64(1), 600, 1500, 4, 0.0, 0.0, 60, false)
	f.Add(int64(7), 700, 400, 3, 0.0, 0.3, 80, true)     // clamp-heavy, frozen tail
	f.Add(int64(11), 520, 2500, 5, 0.9, 0.0, 50, false)  // momentum
	f.Add(int64(3), 300, 0, 2, 0.0, 0.5, 70, false)      // no edges at all
	f.Add(int64(42), 640, 800, 6, 0.5, 0.08, 64, true)   // crosses a resync boundary
	f.Add(int64(9), 768, 600, 4, 0.0, 2000.0, 100, true) // skip masks actually engage
	f.Fuzz(func(t *testing.T, seed int64, g, e, k int, momentum, learnRate float64, iters int, isolateTail bool) {
		// Bound the shape so a fuzz input stays a sub-second solve while
		// still spanning several gate and edge shards.
		if g < 8 {
			g = 8
		}
		if g > 768 {
			g = 768
		}
		if k < 2 {
			k = 2
		}
		if k > 6 {
			k = 6
		}
		if e < 0 {
			e = 0
		}
		if e > 2500 {
			e = 2500
		}
		if iters < 1 {
			iters = 1
		}
		if iters > 100 {
			iters = 100
		}
		if math.IsNaN(momentum) || momentum < 0 || momentum >= 1 {
			momentum = 0
		}
		// Normalized gradients scale like 1/(G·K), so learn rates in the
		// thousands are the regime where rows actually slam into the clamp
		// bounds and freeze (w stays in [0,1] by construction, so large
		// rates cannot overflow — they just clamp harder).
		if math.IsNaN(learnRate) || learnRate < 0 || learnRate > 5000 {
			learnRate = 0
		}
		p := incrProblem(t, seed, g, e, k, isolateTail)
		base := Options{Seed: seed, MaxIters: iters, Margin: 1e-12,
			Momentum: momentum, LearnRate: learnRate}

		fullOpts := base
		fullOpts.NoIncremental = true
		fullOpts.Workers = 1
		want, err := p.Solve(fullOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2} {
			incrOpts := base
			incrOpts.Workers = workers
			got, err := p.Solve(incrOpts)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalResults(t, "incremental-vs-full", want, got)
		}
	})
}

// TestBlockedKernelDeterminismSweep pins the cache-blocked kernels — the
// column-blocked float64 gate sweep and the SoA float32 tier — to bitwise
// identical results at Workers 1, 2, and NumCPU, on a problem big enough
// to span multiple gate and edge shards, with the incremental planner both
// on and off.
func TestBlockedKernelDeterminismSweep(t *testing.T) {
	p := incrProblem(t, 5, 700, 2200, 5, true)
	for _, prec := range []Precision{Precision64, Precision32} {
		for _, noIncr := range []bool{false, true} {
			var want *Result
			for _, workers := range []int{1, 2, runtime.NumCPU()} {
				res, err := p.Solve(Options{Seed: 3, MaxIters: 90, Margin: 1e-12,
					LearnRate: 0.2, Workers: workers,
					Precision: prec, NoIncremental: noIncr})
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = res
				} else {
					requireIdenticalResults(t, prec.String(), want, res)
				}
			}
		}
	}
}

// TestIncrementalEngages proves the skip masks actually activate on the
// frozen-tail topology (an incremental tier that never skips would pass
// every parity test vacuously) and that a solve crossing the forced-resync
// boundary stays exact.
func TestIncrementalEngages(t *testing.T) {
	p := incrProblem(t, 9, 768, 600, 4, true)
	// Normalized gradients scale like 1/(G·K); a learn rate in the
	// thousands is what drives the zero-attribute tail rows to their
	// one-hot vertices (where they clamp-freeze exactly) while the edged
	// core keeps moving under F1 — the partial-dirtiness regime.
	opts := Options{Seed: 2, MaxIters: 3 * incrResyncEvery, Margin: 1e-12, LearnRate: 2000}

	// Count skipped gate-shard sweeps by running the planner's own state
	// through a solve: re-solve with instrumentation via the scratch is
	// internal, so infer engagement from the planner directly.
	sc := p.newScratch((*pool.Group)(nil)) // nil *Group runs shards inline
	w := p.NewW()
	p.randomInitW(w, opts.Seed)
	sc.setDescentState(p, DefaultCoeffs(), GradientExact, opts.LearnRate, 0, nil, false, false)
	skips := 0
	for iter := 0; iter < opts.MaxIters; iter++ {
		p.planIncremental(sc, true, iter > 0)
		p.evalIter(w, DefaultCoeffs(), GradientExact, sc)
		if sc.skipGate != nil {
			for _, s := range sc.skipGate {
				if s {
					skips++
				}
			}
		}
		p.gradUpdate(sc)
	}
	if skips == 0 {
		t.Fatal("incremental planner never skipped a gate shard on the frozen-tail topology")
	}
	t.Logf("skipped %d gate-shard sweeps over %d iterations", skips, opts.MaxIters)

	// And the full solve over the same span remains exact.
	fullOpts := opts
	fullOpts.NoIncremental = true
	want, err := p.Solve(fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, "resync-span", want, got)
}
