package partition

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"gpp/internal/obs"
)

// TestSolveSpans: a flat solve with a span attached emits one descent span
// carrying the iteration count, with one checkpoint child per checkpoint
// callback — and the untimed encoding is byte-identical at every worker
// count.
func TestSolveSpans(t *testing.T) {
	p := traceProblem(t, "KSA8", 5)
	run := func(workers int) ([]byte, int) {
		var buf bytes.Buffer
		sink := obs.NewJSONL(&buf)
		root := obs.NewTrace(sink).Root("test")
		checkpoints := 0
		_, err := p.Solve(Options{
			Seed: 1, MaxIters: 100, Margin: 1e-300, Workers: workers,
			CheckpointEvery: 25,
			Checkpoint:      func(*Snapshot) error { checkpoints++; return nil },
			Span:            root,
		})
		if err != nil {
			t.Fatal(err)
		}
		root.End()
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), checkpoints
	}

	ref, checkpoints := run(1)
	if checkpoints != 4 {
		t.Fatalf("%d checkpoints for 100 iters every 25, want 4", checkpoints)
	}
	events, err := obs.ReadTrace(bytes.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	roots := obs.BuildSpanTree(events)
	if len(roots) != 1 {
		t.Fatalf("%d root spans, want 1", len(roots))
	}
	var descent *obs.SpanNode
	for _, c := range roots[0].Children {
		if c.Event.Span == "descent" {
			descent = c
		}
	}
	if descent == nil {
		t.Fatal("no descent span under the root")
	}
	if descent.Event.Attrs != "iters=100" {
		t.Errorf("descent attrs = %q, want \"iters=100\"", descent.Event.Attrs)
	}
	var ckAttrs []string
	for _, c := range descent.Children {
		if c.Event.Span == "checkpoint" {
			ckAttrs = append(ckAttrs, c.Event.Attrs)
		}
	}
	want := []string{"iter=25", "iter=50", "iter=75", "iter=100"}
	if fmt.Sprint(ckAttrs) != fmt.Sprint(want) {
		t.Errorf("checkpoint spans = %v, want %v", ckAttrs, want)
	}

	seen := map[int]bool{1: true}
	for _, workers := range []int{2, runtime.NumCPU()} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		got, _ := run(workers)
		if !bytes.Equal(ref, got) {
			t.Errorf("span JSONL differs between workers=1 and workers=%d:\n--- w1 ---\n%s--- w%d ---\n%s",
				workers, ref, workers, got)
		}
	}
}

// TestSolveSpanParity: attaching a span changes nothing about the solve —
// labels and iteration counts match a bare run exactly.
func TestSolveSpanParity(t *testing.T) {
	p := traceProblem(t, "KSA8", 5)
	bare, err := p.Solve(Options{Seed: 1, MaxIters: 80, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	root := obs.NewTrace(sink).Root("test")
	traced, err := p.Solve(Options{Seed: 1, MaxIters: 80, Workers: 1, Span: root})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Iters != bare.Iters {
		t.Fatalf("traced solve ran %d iters, bare ran %d", traced.Iters, bare.Iters)
	}
	for i := range bare.Labels {
		if bare.Labels[i] != traced.Labels[i] {
			t.Fatalf("label[%d] differs: traced %d vs bare %d", i, traced.Labels[i], bare.Labels[i])
		}
	}
}
