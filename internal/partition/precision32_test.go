package partition

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"gpp/internal/gen"
)

func benchProblem(t *testing.T, circuit string, k int) *Problem {
	t.Helper()
	c, err := gen.Benchmark(circuit, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromCircuit(c, k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPrecision32Deterministic holds the float32 tier to the same
// reproducibility contract as the default tier: bitwise identical results
// at every worker count, with and without the incremental planner.
func TestPrecision32Deterministic(t *testing.T) {
	for _, circuit := range []string{"KSA16", "C499"} {
		p := benchProblem(t, circuit, 5)
		var first string
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			for _, noIncr := range []bool{false, true} {
				res, err := p.Solve(Options{Precision: Precision32, MaxIters: 120,
					Workers: workers, NoIncremental: noIncr})
				if err != nil {
					t.Fatal(err)
				}
				hash := goldenHash(res)
				if first == "" {
					first = hash
				} else if hash != first {
					t.Fatalf("%s: workers=%d noIncr=%v hash %s differs from %s",
						circuit, workers, noIncr, hash, first)
				}
			}
		}
	}
}

// TestPrecision32BoundedDivergence bounds how far the float32 tier drifts
// from the float64 kernel. At the shared (rounded) starting point the cost
// must agree to float32 rounding; over a full bounded descent the final
// relaxed and discrete costs must stay within a small relative band — the
// tiers follow genuinely different trajectories after enough iterations,
// but they descend the same landscape to the same quality.
func TestPrecision32BoundedDivergence(t *testing.T) {
	for _, circuit := range []string{"KSA16", "C499", "KSA32"} {
		p := benchProblem(t, circuit, 5)
		opts := Options{MaxIters: 120, TraceCost: true}
		r64, err := p.Solve(opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Precision = Precision32
		r32, err := p.Solve(opts)
		if err != nil {
			t.Fatal(err)
		}
		relDiff := func(a, b float64) float64 {
			d := math.Abs(a - b)
			if m := math.Abs(b); m > 1e-12 {
				d /= m
			}
			return d
		}
		// Iteration 0 evaluates the same random initialization, differing
		// only by one float32 rounding per entry (~1e-7 relative).
		if d := relDiff(r32.CostTrace[0], r64.CostTrace[0]); d > 1e-5 {
			t.Errorf("%s: initial cost diverges by %.3g (f32 %g vs f64 %g)",
				circuit, d, r32.CostTrace[0], r64.CostTrace[0])
		}
		if d := relDiff(r32.Relaxed.Total, r64.Relaxed.Total); d > 0.05 {
			t.Errorf("%s: final relaxed cost diverges by %.3g (f32 %g vs f64 %g)",
				circuit, d, r32.Relaxed.Total, r64.Relaxed.Total)
		}
		if d := relDiff(r32.Discrete.Total, r64.Discrete.Total); d > 0.15 {
			t.Errorf("%s: discrete cost diverges by %.3g (f32 %g vs f64 %g)",
				circuit, d, r32.Discrete.Total, r64.Discrete.Total)
		}
		t.Logf("%s: init Δ=%.3g relaxed Δ=%.3g (f32 %.6g vs %.6g) discrete Δ=%.3g",
			circuit,
			relDiff(r32.CostTrace[0], r64.CostTrace[0]),
			relDiff(r32.Relaxed.Total, r64.Relaxed.Total),
			r32.Relaxed.Total, r64.Relaxed.Total,
			relDiff(r32.Discrete.Total, r64.Discrete.Total))
		// The tier must still produce a valid relaxed matrix.
		for _, v := range r32.W {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s: float32 tier left W entry %g outside [0,1]", circuit, v)
			}
		}
	}
}

// TestPrecision32Fingerprint pins the cache-key semantics: the float32
// tier hashes to a distinct fingerprint, while spelling out the default
// precision changes nothing (existing float64 fingerprints — and with
// them stored checkpoints and cache entries — stay valid).
func TestPrecision32Fingerprint(t *testing.T) {
	base := Options{Seed: 3, MaxIters: 200}
	fp64, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.Precision = Precision64
	fp64e, err := explicit.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp64 != fp64e {
		t.Errorf("explicit Precision64 changed the fingerprint: %s vs %s", fp64e, fp64)
	}
	f32 := base
	f32.Precision = Precision32
	fp32, err := f32.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp32 == fp64 {
		t.Errorf("float32 tier shares the float64 fingerprint %s", fp64)
	}
}

func TestPrecision32Validation(t *testing.T) {
	p := benchProblem(t, "KSA16", 5)
	bad := []Options{
		{Precision: Precision32, Gradient: GradientPaper},
		{Precision: Precision32, ReduceDims: true},
		{Precision: Precision32, Renormalize: true},
		{Precision: Precision(7)},
	}
	for i, opts := range bad {
		if _, err := p.Solve(opts); err == nil {
			t.Errorf("case %d: invalid float32-tier options accepted", i)
		}
	}
	if got := Precision32.String(); got != "float32" {
		t.Errorf("Precision32.String() = %q", got)
	}
	if got := Precision64.String(); got != "float64" {
		t.Errorf("Precision64.String() = %q", got)
	}
}

// TestPrecision32Resume runs the standard kill-and-resume harness on the
// float32 tier: snapshots round-trip through the codec and resumed solves
// finish bitwise identical at several worker counts.
func TestPrecision32Resume(t *testing.T) {
	checkpointAndResume(t, Options{Seed: 5, MaxIters: 120, Margin: 1e-9,
		TraceCost: true, Precision: Precision32}, 25)
}

func TestPrecision32ResumeMomentum(t *testing.T) {
	checkpointAndResume(t, Options{Seed: 9, MaxIters: 150, Margin: 1e-9,
		Momentum: 0.8, TraceCost: true, Precision: Precision32}, 40)
}

// TestPrecision32ResumeRejectsCrossTier: a float64 snapshot must not
// continue a float32 solve (or vice versa) — the fingerprints differ.
func TestPrecision32ResumeRejectsCrossTier(t *testing.T) {
	p := benchProblem(t, "KSA16", 5)
	var snaps []*Snapshot
	_, err := p.Solve(Options{Seed: 5, MaxIters: 60, Margin: 1e-12,
		CheckpointEvery: 20,
		Checkpoint:      func(s *Snapshot) error { snaps = append(snaps, s); return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	_, err = p.Solve(Options{Seed: 5, MaxIters: 60, Margin: 1e-12,
		Precision: Precision32, Resume: snaps[0]})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("float64 snapshot resumed under the float32 tier (err=%v)", err)
	}
}
