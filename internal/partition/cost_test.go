package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tinyProblem: 4 gates in a chain, K = 2, distinct bias/area.
func tinyProblem(t *testing.T) *Problem {
	t.Helper()
	p, err := NewProblem("tiny", 2,
		[]float64{1, 2, 3, 4},
		[]float64{0.1, 0.2, 0.3, 0.4},
		[][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randProblem(t *testing.T, g, k, e int, seed int64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bias := make([]float64, g)
	area := make([]float64, g)
	for i := range bias {
		bias[i] = 0.5 + rng.Float64()
		area[i] = 0.001 + 0.005*rng.Float64()
	}
	edges := make([][2]int, 0, e)
	for len(edges) < e {
		a := rng.Intn(g)
		b := rng.Intn(g)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	p, err := NewProblem("rand", k, bias, area, edges)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randW(p *Problem, seed int64) W {
	rng := rand.New(rand.NewSource(seed))
	w := p.NewW()
	for i := 0; i < p.G; i++ {
		row := w[i*p.K : (i+1)*p.K]
		var sum float64
		for k := range row {
			row[k] = rng.Float64()
			sum += row[k]
		}
		for k := range row {
			row[k] /= sum
		}
	}
	return w
}

func TestNewProblemValidation(t *testing.T) {
	bias := []float64{1, 1, 1}
	area := []float64{1, 1, 1}
	cases := []struct {
		name string
		fn   func() (*Problem, error)
	}{
		{"empty", func() (*Problem, error) { return NewProblem("x", 2, nil, nil, nil) }},
		{"len mismatch", func() (*Problem, error) { return NewProblem("x", 2, bias, area[:2], nil) }},
		{"K too small", func() (*Problem, error) { return NewProblem("x", 1, bias, area, nil) }},
		{"K exceeds G", func() (*Problem, error) { return NewProblem("x", 4, bias, area, nil) }},
		{"negative bias", func() (*Problem, error) {
			return NewProblem("x", 2, []float64{-1, 1, 1}, area, nil)
		}},
		{"negative area", func() (*Problem, error) {
			return NewProblem("x", 2, bias, []float64{-1, 1, 1}, nil)
		}},
		{"edge out of range", func() (*Problem, error) {
			return NewProblem("x", 2, bias, area, [][2]int{{0, 9}})
		}},
		{"self loop", func() (*Problem, error) {
			return NewProblem("x", 2, bias, area, [][2]int{{1, 1}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.fn(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNormalizationConstants(t *testing.T) {
	p := tinyProblem(t)
	// N1 = |E|(K−1)^4 = 3·1 = 3; B̄ = 10/2 = 5; N2 = 1·25; Ā = 0.5;
	// N3 = 0.25; N4 = G(K−1)² = 4.
	if p.N1 != 3 {
		t.Errorf("N1 = %g, want 3", p.N1)
	}
	if p.N2 != 25 {
		t.Errorf("N2 = %g, want 25", p.N2)
	}
	if math.Abs(p.N3-0.25) > 1e-12 {
		t.Errorf("N3 = %g, want 0.25", p.N3)
	}
	if p.N4 != 4 {
		t.Errorf("N4 = %g, want 4", p.N4)
	}
	if p.MeanBias != 5 || math.Abs(p.MeanArea-0.5) > 1e-12 {
		t.Errorf("means = %g, %g", p.MeanBias, p.MeanArea)
	}
}

func TestDegenerateNormalizers(t *testing.T) {
	// No edges, zero bias, zero area: terms must be zero, not NaN.
	p, err := NewProblem("degen", 2, []float64{0, 0}, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := randW(p, 1)
	bd := p.Cost(w, DefaultCoeffs())
	if math.IsNaN(bd.Total) || math.IsInf(bd.Total, 0) {
		t.Fatalf("degenerate cost = %v", bd)
	}
	if bd.F1 != 0 || bd.F2 != 0 || bd.F3 != 0 {
		t.Errorf("degenerate terms nonzero: %+v", bd)
	}
}

func TestLabelsEquation3(t *testing.T) {
	p := tinyProblem(t)
	w := p.NewW()
	// Gate 0 fully on plane 1 (index 0) → l = 1; gate 1 fully on plane 2
	// → l = 2; gate 2 half and half → l = 1.5.
	w[0*2+0] = 1
	w[1*2+1] = 1
	w[2*2+0], w[2*2+1] = 0.5, 0.5
	w[3*2+0] = 1
	l := p.Labels(w)
	want := []float64{1, 2, 1.5, 1}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-12 {
			t.Errorf("l[%d] = %g, want %g", i, l[i], want[i])
		}
	}
}

func TestCostHandComputed(t *testing.T) {
	p := tinyProblem(t)
	w := p.NewW()
	// One-hot: gates 0,1 on plane 0; gates 2,3 on plane 1.
	w[0*2+0] = 1
	w[1*2+0] = 1
	w[2*2+1] = 1
	w[3*2+1] = 1
	bd := p.Cost(w, Coeffs{C1: 1, C2: 1, C3: 1, C4: 1})
	// F1: edges (0,1) d=0, (1,2) d=1, (2,3) d=0 → (0+1+0)/3.
	if math.Abs(bd.F1-1.0/3) > 1e-12 {
		t.Errorf("F1 = %g, want 1/3", bd.F1)
	}
	// F2: B = (3, 7), mean 5, var sum 8; F2 = 8/(2·25) = 0.16.
	if math.Abs(bd.F2-0.16) > 1e-12 {
		t.Errorf("F2 = %g, want 0.16", bd.F2)
	}
	// F3: A = (0.3, 0.7), mean 0.5, var sum 0.08; F3 = 0.08/(2·0.25) = 0.16.
	if math.Abs(bd.F3-0.16) > 1e-12 {
		t.Errorf("F3 = %g, want 0.16", bd.F3)
	}
	// F4 at one-hot rows: per gate (sum−1)² − (1/K)Σ(w−w̄)² = 0 − (1/2)(0.5)
	// = −0.25; total −1; normalized by N4=4 → −0.25.
	if math.Abs(bd.F4-(-0.25)) > 1e-12 {
		t.Errorf("F4 = %g, want -0.25", bd.F4)
	}
	if math.Abs(bd.Total-(1.0/3+0.16+0.16-0.25)) > 1e-12 {
		t.Errorf("Total = %g", bd.Total)
	}
}

func TestF4PrefersVertices(t *testing.T) {
	p := tinyProblem(t)
	oneHot := p.NewW()
	uniform := p.NewW()
	for i := 0; i < p.G; i++ {
		oneHot[i*2] = 1
		uniform[i*2], uniform[i*2+1] = 0.5, 0.5
	}
	c := Coeffs{C4: 1}
	vo := p.Cost(oneHot, c).F4
	vu := p.Cost(uniform, c).F4
	if vo >= vu {
		t.Errorf("F4(one-hot) = %g should be < F4(uniform) = %g", vo, vu)
	}
}

func TestDiscreteCostMatchesRelaxedAtVertices(t *testing.T) {
	p := randProblem(t, 30, 4, 60, 3)
	rng := rand.New(rand.NewSource(4))
	labels := make([]int, p.G)
	w := p.NewW()
	for i := range labels {
		labels[i] = rng.Intn(p.K)
		w[i*p.K+labels[i]] = 1
	}
	c := DefaultCoeffs()
	relaxed := p.Cost(w, c)
	discrete := p.DiscreteCost(labels, c)
	for _, pair := range [][2]float64{
		{relaxed.F1, discrete.F1},
		{relaxed.F2, discrete.F2},
		{relaxed.F3, discrete.F3},
		{relaxed.F4, discrete.F4},
		{relaxed.Total, discrete.Total},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9 {
			t.Fatalf("relaxed %g vs discrete %g", pair[0], pair[1])
		}
	}
}

// TestGradientMatchesFiniteDifference is the key correctness check for the
// solver: the analytic exact-mode gradient must agree with central finite
// differences of the cost at random interior points.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p := randProblem(t, 12, 3, 20, seed)
		w := randW(p, seed*7)
		c := Coeffs{C1: 1.3, C2: 0.7, C3: 0.9, C4: 1.1}
		grad := make([]float64, p.G*p.K)
		p.Gradient(w, c, GradientExact, grad)

		const h = 1e-6
		for probe := 0; probe < 25; probe++ {
			idx := (probe * 7919) % len(w)
			orig := w[idx]
			w[idx] = orig + h
			up := p.Cost(w, c).Total
			w[idx] = orig - h
			dn := p.Cost(w, c).Total
			w[idx] = orig
			fd := (up - dn) / (2 * h)
			if math.Abs(fd-grad[idx]) > 1e-5*(1+math.Abs(fd)) {
				t.Errorf("seed %d idx %d: analytic %g vs finite-diff %g", seed, idx, grad[idx], fd)
			}
		}
	}
}

// TestGradientParallelMatchesFiniteDifference repeats the finite-difference
// validation against the sharded kernels on a problem large enough to span
// many gate and edge shards, for several worker counts — a shard-boundary
// bug (an edge or gate dropped or double-counted at a chunk seam) cannot
// hide from the derivative check. The GradientPaper mode is deliberately
// not the exact derivative (documented deviation), so for it the parallel
// kernel is instead pinned elementwise to the serial paper-mode kernel at
// the same probes.
func TestGradientParallelMatchesFiniteDifference(t *testing.T) {
	// 700 gates / 2600 edges → multiple 256-gate and 1024-edge shards.
	p := randProblem(t, 700, 4, 2600, 31)
	w := randW(p, 32)
	c := Coeffs{C1: 1.3, C2: 0.7, C3: 0.9, C4: 1.1}
	for _, workers := range []int{2, 3, 8} {
		grad := make([]float64, p.G*p.K)
		p.GradientParallel(w, c, GradientExact, grad, workers)

		const h = 1e-6
		for probe := 0; probe < 40; probe++ {
			idx := (probe * 7919) % len(w)
			orig := w[idx]
			w[idx] = orig + h
			up := p.CostParallel(w, c, workers).Total
			w[idx] = orig - h
			dn := p.CostParallel(w, c, workers).Total
			w[idx] = orig
			fd := (up - dn) / (2 * h)
			if math.Abs(fd-grad[idx]) > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("workers %d idx %d: analytic %g vs finite-diff %g", workers, idx, grad[idx], fd)
			}
		}

		paperSerial := make([]float64, p.G*p.K)
		paperPar := make([]float64, p.G*p.K)
		p.Gradient(w, c, GradientPaper, paperSerial)
		p.GradientParallel(w, c, GradientPaper, paperPar, workers)
		for i := range paperSerial {
			if paperSerial[i] != paperPar[i] {
				t.Fatalf("workers %d: paper-mode grad[%d] differs from serial: %v vs %v",
					workers, i, paperSerial[i], paperPar[i])
			}
		}
	}
}

// The paper's printed formulas are NOT the exact derivatives (documented
// deviation); this test pins down that they differ at a generic point, so
// the two modes are genuinely distinct ablation arms.
func TestPaperGradientDiffersFromExact(t *testing.T) {
	p := randProblem(t, 10, 3, 15, 9)
	w := randW(p, 10)
	c := DefaultCoeffs()
	exact := make([]float64, p.G*p.K)
	paper := make([]float64, p.G*p.K)
	p.Gradient(w, c, GradientExact, exact)
	p.Gradient(w, c, GradientPaper, paper)
	var diff float64
	for i := range exact {
		diff += math.Abs(exact[i] - paper[i])
	}
	if diff < 1e-9 {
		t.Error("paper-mode gradient identical to exact mode; ablation arm is vacuous")
	}
}

func TestGradientModeString(t *testing.T) {
	if GradientExact.String() != "exact" || GradientPaper.String() != "paper" {
		t.Error("gradient mode names wrong")
	}
	if GradientMode(9).String() != "unknown" {
		t.Error("unknown mode name wrong")
	}
}

func TestAssignArgmax(t *testing.T) {
	p := tinyProblem(t)
	w := p.NewW()
	w[0*2+0], w[0*2+1] = 0.7, 0.3
	w[1*2+0], w[1*2+1] = 0.2, 0.8
	w[2*2+0], w[2*2+1] = 0.5, 0.5 // tie → lowest index
	w[3*2+0], w[3*2+1] = 0.0, 1.0
	got := p.Assign(w)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("label[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPlaneTotals(t *testing.T) {
	p := tinyProblem(t)
	bias, area := p.PlaneTotals([]int{0, 0, 1, 1})
	if bias[0] != 3 || bias[1] != 7 {
		t.Errorf("bias = %v", bias)
	}
	if math.Abs(area[0]-0.3) > 1e-12 || math.Abs(area[1]-0.7) > 1e-12 {
		t.Errorf("area = %v", area)
	}
}

// Property: F1 is zero iff all labels coincide (for one-hot w), and always
// non-negative.
func TestF1Properties(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%4) + 2
		p := randProblem(t, 15, k, 25, seed)
		labels := make([]int, p.G)
		same := p.DiscreteCost(labels, Coeffs{C1: 1}) // all zero labels
		if same.F1 != 0 {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
		return p.DiscreteCost(labels, Coeffs{C1: 1}).F1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: variance terms are invariant under plane relabeling
// (permutation), while F1 generally is not — the ordering of planes is
// physical (serial stack).
func TestF2F3PermutationInvariant(t *testing.T) {
	p := randProblem(t, 20, 3, 30, 5)
	rng := rand.New(rand.NewSource(6))
	labels := make([]int, p.G)
	for i := range labels {
		labels[i] = rng.Intn(3)
	}
	perm := []int{2, 0, 1}
	permuted := make([]int, p.G)
	for i := range labels {
		permuted[i] = perm[labels[i]]
	}
	a := p.DiscreteCost(labels, Coeffs{C2: 1, C3: 1})
	b := p.DiscreteCost(permuted, Coeffs{C2: 1, C3: 1})
	if math.Abs(a.F2-b.F2) > 1e-12 || math.Abs(a.F3-b.F3) > 1e-12 {
		t.Errorf("variance terms not permutation invariant: %+v vs %+v", a, b)
	}
}
