package partition

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveBestPicksLowestCost(t *testing.T) {
	p := randProblem(t, 60, 4, 100, 21)
	opts := Options{Seed: 1, MaxIters: 400}
	best, err := p.SolveBest(opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	// best must be no worse than each individual restart.
	for r := 0; r < 4; r++ {
		o := opts
		o.Seed = 1 + int64(r)
		res, err := p.Solve(o)
		if err != nil {
			t.Fatal(err)
		}
		if best.Discrete.Total > res.Discrete.Total+1e-12 {
			t.Errorf("restart %d beat SolveBest: %g < %g", r, res.Discrete.Total, best.Discrete.Total)
		}
	}
}

func TestSolveBestValidation(t *testing.T) {
	p := randProblem(t, 10, 2, 15, 22)
	if _, err := p.SolveBest(Options{}, 0); err == nil {
		t.Error("zero restarts accepted")
	}
}

func TestBalancedAssignRespectsCapacity(t *testing.T) {
	p := randProblem(t, 100, 5, 180, 23)
	res, err := p.Solve(Options{Seed: 1, MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	const slack = 0.05
	labels := p.BalancedAssign(res.W, slack)
	bias, _ := p.PlaneTotals(labels)
	cap := p.MeanBias * (1 + slack)
	// Random per-gate bias ≈ 1 mA is far below the per-plane capacity, so
	// no fallback placement should be needed and every plane stays within
	// the bound.
	for k, b := range bias {
		if b > cap+1e-9 {
			t.Errorf("plane %d bias %.3f exceeds capacity %.3f", k, b, cap)
		}
	}
}

func TestBalancedAssignTightensBMax(t *testing.T) {
	p := randProblem(t, 120, 5, 220, 24)
	res, err := p.Solve(Options{Seed: 2, MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	argmax := p.Assign(res.W)
	balanced := p.BalancedAssign(res.W, 0.02)
	bmax := func(labels []int) float64 {
		bias, _ := p.PlaneTotals(labels)
		m := 0.0
		for _, b := range bias {
			if b > m {
				m = b
			}
		}
		return m
	}
	if bmax(balanced) > bmax(argmax)+1e-9 {
		t.Errorf("balanced B_max %.3f worse than argmax %.3f", bmax(balanced), bmax(argmax))
	}
}

func TestBalancedAssignNegativeSlackClamped(t *testing.T) {
	p := randProblem(t, 40, 4, 70, 25)
	res, err := p.Solve(Options{Seed: 1, MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	labels := p.BalancedAssign(res.W, -1)
	for _, lb := range labels {
		if lb < 0 || lb >= p.K {
			t.Fatal("labels out of range with clamped slack")
		}
	}
}

func TestBalancedAssignOverfullFallback(t *testing.T) {
	// One giant gate forces the fallback path: its bias alone exceeds any
	// plane's capacity, so it must land on the least-loaded plane rather
	// than loop forever.
	bias := []float64{100, 1, 1, 1}
	area := []float64{1, 1, 1, 1}
	p, err := NewProblem("giant", 2, bias, area, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	w := p.NewW()
	for i := 0; i < p.G; i++ {
		w[i*2] = 0.9
		w[i*2+1] = 0.1
	}
	labels := p.BalancedAssign(w, 0)
	for _, lb := range labels {
		if lb < 0 || lb >= 2 {
			t.Fatal("labels out of range")
		}
	}
	// The three small gates cannot share the giant's plane (capacity
	// 51.5·1.0), so they end up on the other one.
	giant := labels[0]
	for i := 1; i < 4; i++ {
		if labels[i] == giant {
			t.Errorf("small gate %d sharing the giant's plane despite capacity", i)
		}
	}
}

func TestSolveBalancedIntegration(t *testing.T) {
	p := randProblem(t, 80, 4, 150, 26)
	res, err := p.SolveBalanced(Options{Seed: 1, MaxIters: 400}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != p.G {
		t.Fatal("labels missing")
	}
	bias, _ := p.PlaneTotals(res.Labels)
	cap := p.MeanBias * 1.05
	for k, b := range bias {
		if b > cap+1e-9 {
			t.Errorf("plane %d bias %.3f above capacity %.3f", k, b, cap)
		}
	}
	if math.IsNaN(res.Discrete.Total) {
		t.Error("discrete cost not recomputed")
	}
}

func TestReduceDimsKeepsRowsStochastic(t *testing.T) {
	p := randProblem(t, 50, 4, 90, 31)
	res, err := p.Solve(Options{Seed: 1, ReduceDims: true, MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.G; i++ {
		var sum float64
		for k := 0; k < p.K; k++ {
			v := res.W[i*p.K+k]
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("w[%d,%d] = %g outside [0,1]", i, k, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g under ReduceDims", i, sum)
		}
	}
	for _, lb := range res.Labels {
		if lb < 0 || lb >= p.K {
			t.Fatal("labels out of range")
		}
	}
}

func TestReduceDimsProducesComparableQuality(t *testing.T) {
	p := randProblem(t, 80, 5, 150, 32)
	full, err := p.Solve(Options{Seed: 1, MaxIters: 600})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := p.Solve(Options{Seed: 1, ReduceDims: true, MaxIters: 600})
	if err != nil {
		t.Fatal(err)
	}
	// Both must clearly beat a uniform-random assignment; the variants
	// may rank either way on a given instance.
	rnd := make([]int, p.G)
	rng := rand.New(rand.NewSource(9))
	for i := range rnd {
		rnd[i] = rng.Intn(p.K)
	}
	c := DefaultCoeffs()
	randCost := p.DiscreteCost(rnd, c).Total
	if full.Discrete.Total >= randCost {
		t.Errorf("full-dim solve (%g) no better than random (%g)", full.Discrete.Total, randCost)
	}
	if reduced.Discrete.Total >= randCost {
		t.Errorf("reduced-dim solve (%g) no better than random (%g)", reduced.Discrete.Total, randCost)
	}
}

func TestMomentumConvergesFasterOrEqual(t *testing.T) {
	p := randProblem(t, 150, 5, 280, 41)
	plain, err := p.Solve(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mom, err := p.Solve(Options{Seed: 1, Momentum: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, lb := range mom.Labels {
		if lb < 0 || lb >= p.K {
			t.Fatal("momentum labels out of range")
		}
	}
	// Momentum should not be dramatically slower; usually it is faster.
	if mom.Iters > 2*plain.Iters {
		t.Errorf("momentum ran %d iters vs plain %d", mom.Iters, plain.Iters)
	}
	// And the result quality must stay in the same league.
	c := DefaultCoeffs()
	if pm, pp := p.DiscreteCost(mom.Labels, c).Total, p.DiscreteCost(plain.Labels, c).Total; pm > pp+0.1 {
		t.Errorf("momentum cost %g far above plain %g", pm, pp)
	}
}

func TestMomentumValidation(t *testing.T) {
	p := randProblem(t, 10, 2, 15, 42)
	if _, err := p.Solve(Options{Momentum: 1.0}); err == nil {
		t.Error("momentum ≥ 1 accepted")
	}
}
