package partition

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Snapshot is the complete descent state at an iteration boundary: the
// relaxed assignment matrix, the momentum velocity, the calibrated step,
// the previous iteration's cost (the stopping criterion's reference), the
// cost-trace prefix, and enough problem/options identity to refuse a
// resume against the wrong solve. Restarting a solve from a Snapshot in a
// fresh process produces a Result bitwise identical to the uninterrupted
// run — at any Options.Workers count — because the snapshot point is an
// iteration boundary and every kernel is already bitwise deterministic.
//
// The RNG is consumed only by the random initialization (G·K Float64
// draws before iteration 0); every snapshot is taken after that, so
// RNGDraws records the stream position for the format without a resumed
// solve ever needing to re-draw.
type Snapshot struct {
	// Version is the codec version that produced this snapshot.
	Version int

	// Name is the problem name (informational; not checked on resume).
	Name string

	// G, K and EdgeCount pin the problem shape; Fingerprint pins the
	// normalized options (see Options.Fingerprint). Resume rejects a
	// snapshot whose identity does not match the problem and options it
	// is resumed under — the continuation would be a different solve.
	G, K, EdgeCount int
	Fingerprint     string

	// Seed is the originating solve's seed (informational; Fingerprint
	// already covers it).
	Seed int64

	// Iter is the number of completed gradient iterations: the resumed
	// loop continues at iteration index Iter.
	Iter int

	// RNGDraws is the count of rand.Float64 draws consumed (always G·K:
	// the initialization; the descent itself is deterministic).
	RNGDraws uint64

	// Step is the learning rate in effect (auto-calibration happens
	// before iteration 0, so it is final in every snapshot).
	Step float64

	// CostOld is the stopping criterion's reference: the total cost
	// evaluated at iteration Iter−1 (+Inf if Iter is 0).
	CostOld float64

	// W is the relaxed assignment matrix after Iter iterations (length
	// G·K, row-major).
	W []float64

	// Velocity is the heavy-ball momentum state (nil when momentum is
	// off, length G·K otherwise).
	Velocity []float64

	// CostTrace is the per-iteration total-cost prefix, present only when
	// the checkpointing solve ran with Options.TraceCost.
	CostTrace []float64
}

// snapshotVersion is the current binary codec version.
const snapshotVersion = 1

// snapshotMagic tags the binary encoding.
const snapshotMagic = "gppsnap\x01"

// maxSnapshotElems bounds decoded slice lengths (W, Velocity, CostTrace)
// so a malformed header cannot demand an absurd allocation before the CRC
// is even checked. 1<<27 float64s is 1 GiB per slice — far beyond any
// real problem (G·K for the paper-scale circuits is ~10⁴..10⁶).
const maxSnapshotElems = 1 << 27

// EncodeSnapshot serializes the snapshot to the versioned binary format:
//
//	magic ‖ u32 version ‖ u32 crc32(payload) ‖ u64 len(payload) ‖ payload
//
// Floats are raw IEEE-754 bit patterns (little-endian), so the encoding
// is exact — decode(encode(s)) reproduces every float bit for bit, which
// is what makes a resumed solve bitwise identical rather than merely
// close. The CRC frame rejects torn or corrupted files at decode time.
func EncodeSnapshot(s *Snapshot) []byte {
	var p []byte
	putU64 := func(v uint64) { p = binary.LittleEndian.AppendUint64(p, v) }
	putF64 := func(v float64) { putU64(math.Float64bits(v)) }
	putStr := func(v string) { putU64(uint64(len(v))); p = append(p, v...) }
	putF64s := func(v []float64) {
		putU64(uint64(len(v)))
		for _, f := range v {
			putF64(f)
		}
	}
	putStr(s.Name)
	putU64(uint64(s.G))
	putU64(uint64(s.K))
	putU64(uint64(s.EdgeCount))
	putStr(s.Fingerprint)
	putU64(uint64(s.Seed))
	putU64(uint64(s.Iter))
	putU64(s.RNGDraws)
	putF64(s.Step)
	putF64(s.CostOld)
	putF64s(s.W)
	if s.Velocity == nil {
		putU64(0xffffffffffffffff) // nil marker: momentum off ≠ empty
	} else {
		putF64s(s.Velocity)
	}
	putF64s(s.CostTrace)

	out := make([]byte, 0, len(snapshotMagic)+16+len(p))
	out = append(out, snapshotMagic...)
	out = binary.LittleEndian.AppendUint32(out, snapshotVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(p))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p)))
	return append(out, p...)
}

// snapDecoder is a bounds-checked cursor over the payload.
type snapDecoder struct {
	p   []byte
	off int
	err error
}

func (d *snapDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.p) {
		d.err = fmt.Errorf("partition: snapshot truncated at byte %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return v
}

func (d *snapDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *snapDecoder) count(what string) int {
	n := d.u64()
	if d.err == nil && n > maxSnapshotElems {
		d.err = fmt.Errorf("partition: snapshot %s length %d exceeds limit", what, n)
	}
	if d.err != nil {
		return 0
	}
	return int(n)
}

func (d *snapDecoder) str(what string) string {
	n := d.count(what)
	if d.err == nil && d.off+n > len(d.p) {
		d.err = fmt.Errorf("partition: snapshot %s truncated", what)
	}
	if d.err != nil {
		return ""
	}
	s := string(d.p[d.off : d.off+n])
	d.off += n
	return s
}

func (d *snapDecoder) f64s(what string) []float64 {
	n := d.count(what)
	if d.err == nil && d.off+8*n > len(d.p) {
		d.err = fmt.Errorf("partition: snapshot %s truncated", what)
	}
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// DecodeSnapshot parses and validates the binary snapshot format. Any
// malformed input — bad magic, unknown version, CRC mismatch, truncation,
// trailing garbage, or internally inconsistent lengths — is a descriptive
// error, never a panic (FuzzSnapshotDecode holds it to that).
func DecodeSnapshot(raw []byte) (*Snapshot, error) {
	head := len(snapshotMagic) + 16
	if len(raw) < head {
		return nil, fmt.Errorf("partition: snapshot too short (%d bytes)", len(raw))
	}
	if string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("partition: not a snapshot (bad magic)")
	}
	version := binary.LittleEndian.Uint32(raw[len(snapshotMagic):])
	if version != snapshotVersion {
		return nil, fmt.Errorf("partition: snapshot version %d not supported (have %d)", version, snapshotVersion)
	}
	wantCRC := binary.LittleEndian.Uint32(raw[len(snapshotMagic)+4:])
	wantLen := binary.LittleEndian.Uint64(raw[len(snapshotMagic)+8:])
	payload := raw[head:]
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("partition: snapshot payload %d bytes, header says %d", len(payload), wantLen)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("partition: snapshot CRC mismatch (got %08x, want %08x)", got, wantCRC)
	}

	d := &snapDecoder{p: payload}
	s := &Snapshot{Version: int(version)}
	s.Name = d.str("name")
	s.G = int(d.u64())
	s.K = int(d.u64())
	s.EdgeCount = int(d.u64())
	s.Fingerprint = d.str("fingerprint")
	s.Seed = int64(d.u64())
	s.Iter = int(d.u64())
	s.RNGDraws = d.u64()
	s.Step = d.f64()
	s.CostOld = d.f64()
	s.W = d.f64s("W")
	// Velocity uses an explicit nil marker so "momentum off" survives the
	// round trip distinct from a zero-length slice.
	if d.err == nil && d.off+8 <= len(d.p) &&
		binary.LittleEndian.Uint64(d.p[d.off:]) == 0xffffffffffffffff {
		d.off += 8
	} else {
		s.Velocity = d.f64s("velocity")
	}
	s.CostTrace = d.f64s("cost trace")
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.p) {
		return nil, fmt.Errorf("partition: snapshot has %d trailing bytes", len(d.p)-d.off)
	}
	if s.G <= 0 || s.K <= 0 || s.G > maxSnapshotElems || s.K > maxSnapshotElems {
		return nil, fmt.Errorf("partition: snapshot shape G=%d K=%d invalid", s.G, s.K)
	}
	if len(s.W) != s.G*s.K {
		return nil, fmt.Errorf("partition: snapshot W has %d entries, want G·K = %d", len(s.W), s.G*s.K)
	}
	if s.Velocity != nil && len(s.Velocity) != s.G*s.K {
		return nil, fmt.Errorf("partition: snapshot velocity has %d entries, want G·K = %d", len(s.Velocity), s.G*s.K)
	}
	if s.Iter < 0 || s.EdgeCount < 0 {
		return nil, fmt.Errorf("partition: snapshot iter %d / edges %d negative", s.Iter, s.EdgeCount)
	}
	return s, nil
}

// checkResume validates a snapshot against the problem and options it is
// being resumed under. The fingerprint check is strict: resuming with any
// result-relevant option changed (coefficients, margin, seed, momentum,
// …) would not be a continuation of the checkpointed solve, so it is
// rejected rather than silently producing a third, hybrid trajectory.
func (p *Problem) checkResume(s *Snapshot, opts Options) error {
	if s == nil {
		return nil
	}
	if s.G != p.G || s.K != p.K || s.EdgeCount != len(p.Edges) {
		return fmt.Errorf("partition: snapshot is for a %d-gate %d-plane %d-edge problem, not %d/%d/%d",
			s.G, s.K, s.EdgeCount, p.G, p.K, len(p.Edges))
	}
	fp, err := opts.Fingerprint()
	if err != nil {
		return err
	}
	if s.Fingerprint != fp {
		return fmt.Errorf("partition: snapshot options fingerprint %.12s… does not match resume options %.12s… (same flags required)",
			s.Fingerprint, fp)
	}
	if len(s.W) != p.G*p.K {
		return fmt.Errorf("partition: snapshot W has %d entries, want %d", len(s.W), p.G*p.K)
	}
	if opts.Momentum > 0 && s.Velocity == nil {
		return fmt.Errorf("partition: snapshot has no momentum velocity but resume options set momentum %g", opts.Momentum)
	}
	for _, v := range s.W {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("partition: snapshot W contains a non-finite entry")
		}
	}
	n := opts
	n, err = n.Normalize()
	if err != nil {
		return err
	}
	if s.Iter > n.MaxIters {
		return fmt.Errorf("partition: snapshot iteration %d exceeds max iterations %d", s.Iter, n.MaxIters)
	}
	return nil
}

// takeSnapshot deep-copies the live descent state at an iteration
// boundary. iter is the number of completed iterations; costOld is the
// cost evaluated at iter−1.
func (p *Problem) takeSnapshot(opts Options, fp string, iter int, step, costOld float64,
	w W, velocity, costTrace []float64) *Snapshot {
	s := &Snapshot{
		Version:     snapshotVersion,
		Name:        p.Name,
		G:           p.G,
		K:           p.K,
		EdgeCount:   len(p.Edges),
		Fingerprint: fp,
		Seed:        opts.Seed,
		Iter:        iter,
		RNGDraws:    uint64(p.G * p.K),
		Step:        step,
		CostOld:     costOld,
		W:           append([]float64(nil), w...),
	}
	if velocity != nil {
		s.Velocity = append([]float64(nil), velocity...)
	}
	if costTrace != nil {
		s.CostTrace = append([]float64(nil), costTrace...)
	}
	return s
}
