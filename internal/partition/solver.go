package partition

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"gpp/internal/obs"
	"gpp/internal/pool"
)

// Precision selects the arithmetic tier of the descent kernels (see
// Options.Precision).
type Precision int

const (
	// Precision64 is the default full-float64 kernel.
	Precision64 Precision = iota
	// Precision32 stores W (and the momentum velocity) as float32 in a
	// structure-of-arrays layout while accumulating every reduction in
	// float64.
	Precision32
)

func (p Precision) String() string {
	switch p {
	case Precision64:
		return "float64"
	case Precision32:
		return "float32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// Options configures the gradient-descent solver (Algorithm 1).
type Options struct {
	// Coeffs are the c1..c4 constants of Eq. 8. Zero value means
	// DefaultCoeffs().
	Coeffs Coeffs

	// Margin is the relative-cost stopping threshold of Algorithm 1:
	// iteration stops when |cost_new/cost_old − 1| ≤ Margin. Default 1e-4
	// (the paper's value).
	Margin float64

	// MaxIters caps the descent loop. Algorithm 1 has no explicit cap; the
	// cap guards pathological coefficient choices. Default 4000.
	MaxIters int

	// LearnRate, if positive, is a fixed step size: w ← w − LearnRate·∇F.
	// If zero, the step is auto-calibrated so that the first update moves
	// the largest-magnitude entry by InitStep (see below). Algorithm 1
	// subtracts the raw gradient; because the normalized gradients scale
	// like 1/(G·K) that literal rule stalls on real circuit sizes, so
	// auto-calibration is the default. Set LearnRate = 1 to reproduce the
	// literal algorithm.
	LearnRate float64

	// InitStep is the auto-calibration target for the first step's largest
	// entry movement. Default 0.25/K: a w-entry movement of δ can move a
	// continuous label by up to K·δ, so the default keeps the per-step
	// label movement bounded by ~0.25 planes independent of K (large K
	// collapses onto a single plane with K-independent steps).
	InitStep float64

	// Seed seeds the random initialization. Runs are deterministic for a
	// fixed seed. Default 1.
	Seed int64

	// Terms selects registered cost terms beyond the implicit default set
	// (see terms.go and DESIGN.md §16). The paper terms "f1".."f4" scale
	// the corresponding coefficient and normalize away (an empty list and
	// a pure f-term list both canonicalize onto plain Coeffs — the
	// historical kernel path, bit for bit). Regime terms (registered by
	// internal/terms: "xesfq", "current_limit", "timing_critical") stay in
	// the normalized list, fold into Fingerprint, and take effect when the
	// Problem is compiled through terms.BuildProblem — the facade and the
	// serve daemon do this; Problem.Solve alone only carries them in the
	// solve identity. Unknown or duplicate names and non-finite or
	// negative weights/params are validation errors.
	Terms []TermSpec

	// Gradient selects exact (default) or paper-literal gradients.
	Gradient GradientMode

	// Renormalize, if true, rescales each row to sum to one after every
	// update (projection onto the simplex face the initialization starts
	// on). Algorithm 1 only clamps to [0,1]; renormalization is an
	// ablation option.
	Renormalize bool

	// Momentum, when in (0, 1), applies heavy-ball momentum to the
	// descent: v ← Momentum·v + ∇F; w ← w − step·v. The paper uses plain
	// gradient steps; momentum is an extension that typically reaches the
	// stopping margin in fewer iterations on large circuits.
	Momentum float64

	// ReduceDims, if true, uses the paper's dimension-reduction trick
	// (Section IV-C): because Σ_k w_{i,k} = 1 is known, each row is
	// updated as a K−1-dimensional free vector with the last coordinate
	// derived as 1 − Σ of the rest. Free coordinates move against the
	// *reduced* gradient ∂F/∂w_{i,k} − ∂F/∂w_{i,K}, are clamped to [0,1],
	// and the row is rescaled when the free part exceeds one, keeping the
	// derived coordinate non-negative. Mutually exclusive with Renormalize
	// (rows stay stochastic by construction); combining them is a
	// validation error.
	ReduceDims bool

	// Workers is the number of goroutines the cost/gradient kernels run
	// on: 0 ("auto") means one per CPU, 1 means fully serial, N means
	// exactly N. The kernels use a fixed shard decomposition with
	// shard-order merges, so every worker count produces bitwise
	// identical results — Workers is purely a speed knob. Negative values
	// are a validation error.
	Workers int

	// Precision selects the arithmetic tier the descent kernels run in.
	// The default, Precision64, is the full float64 kernel whose results
	// are pinned by the golden parity tests. Precision32 is an opt-in
	// speed/memory tier: the assignment matrix (and momentum velocity) are
	// stored as float32 in a cache-blocked structure-of-arrays layout and
	// every reduction still accumulates in float64, so results stay
	// deterministic and bitwise reproducible at every Workers count — but
	// they are NOT bitwise equal to the float64 tier (each w entry is
	// rounded to float32 once per update). Because the trajectories
	// genuinely differ, Precision is folded into Fingerprint, giving
	// float32 results distinct checkpoint identities and cache keys. The
	// float32 tier supports the default exact-gradient clamped update
	// (momentum included); the ablation paths (GradientPaper, ReduceDims,
	// Renormalize) are float64-only and rejected by validation.
	Precision Precision

	// NoIncremental disables the incremental cost-evaluation tier: the
	// descent then full-sweeps every shard on every iteration instead of
	// reusing the stored partials of shards the previous update provably
	// did not touch (see DESIGN.md §15). The incremental path is bitwise
	// identical to the full-sweep path by construction — this knob exists
	// for verification (the parity fuzz drives it) and benchmarking, and
	// like Workers it is execution-only: excluded from Fingerprint, never
	// changes a result.
	NoIncremental bool

	// Refine, if true, runs the greedy move-based refinement pass on the
	// discrete assignment after descent (see Refine). Off by default: the
	// headline reproduction reports the raw Algorithm-1 output.
	Refine bool

	// RefinePasses caps refinement sweeps (default 8).
	RefinePasses int

	// TraceCost, if true, records the total cost after every iteration.
	TraceCost bool

	// Tracer, when non-nil, receives structured telemetry events for the
	// solve: solve_start, pool, one iter event per gradient update, snap,
	// refine passes, and solve_done (see internal/obs). A nil Tracer is the
	// default and keeps the iteration path allocation-free; event payloads
	// are pure functions of solver state, so traces are deterministic at
	// every Workers count. If the tracer is a sink that latches a write
	// error (obs.JSONL), Solve surfaces that error instead of silently
	// dropping the trace.
	Tracer obs.Tracer

	// Span, when non-nil, is the parent span the solve hangs its spans
	// under: a "descent" span covering initialization through the
	// gradient loop, with one "checkpoint" child per snapshot fsync.
	// Like Tracer it is execution-only — excluded from Fingerprint, nil
	// by default, and the nil path costs nothing (nil-receiver no-ops).
	Span *obs.Span

	// Checkpoint, when non-nil, receives a Snapshot of the complete
	// descent state every CheckpointEvery iterations (deep copies — the
	// hook may retain or serialize them). A solve killed after a
	// checkpoint and resumed from it (Resume) finishes bitwise identical
	// to the uninterrupted run at any Workers count. A hook error aborts
	// the solve with that error. Like Tracer, Checkpoint is execution-
	// only: it never changes the result and is excluded from Fingerprint.
	Checkpoint func(*Snapshot) error

	// CheckpointEvery is the snapshot cadence in iterations; 0 with a
	// non-nil Checkpoint hook defaults to 100. Negative is a validation
	// error.
	CheckpointEvery int

	// Resume, when non-nil, continues the checkpointed solve instead of
	// random-initializing: the matrix, momentum velocity, step size,
	// stopping reference and iteration count all restore from the
	// snapshot, and the RNG initialization is skipped (the snapshot is
	// always past it). The snapshot must match the problem shape and the
	// options fingerprint — a resume under different result-relevant
	// options is rejected.
	Resume *Snapshot
}

// validate rejects nonsensical option combinations before defaulting. Zero
// values mean "use the default" and are fine; negatives and non-finite
// values have no meaning anywhere and were historically silently coerced —
// now they are descriptive errors.
func (o Options) validate() error {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	switch {
	case o.Workers < 0:
		return fmt.Errorf("partition: workers %d must be ≥ 0 (0 = one per CPU)", o.Workers)
	case !finite(o.Margin) || o.Margin < 0:
		return fmt.Errorf("partition: margin %g must be a finite value in [0, 1)", o.Margin)
	case o.Margin >= 1:
		return fmt.Errorf("partition: margin %g must be < 1", o.Margin)
	case o.MaxIters < 0:
		return fmt.Errorf("partition: max iterations %d must be ≥ 0 (0 = default)", o.MaxIters)
	case !finite(o.LearnRate) || o.LearnRate < 0:
		return fmt.Errorf("partition: learn rate %g must be a finite value ≥ 0 (0 = auto-calibrate)", o.LearnRate)
	case !finite(o.InitStep) || o.InitStep < 0:
		return fmt.Errorf("partition: init step %g must be a finite value ≥ 0 (0 = default)", o.InitStep)
	case !finite(o.Momentum) || o.Momentum < 0 || o.Momentum >= 1:
		return fmt.Errorf("partition: momentum %g must be a finite value in [0, 1)", o.Momentum)
	case o.Renormalize && o.ReduceDims:
		return fmt.Errorf("partition: Renormalize and ReduceDims are mutually exclusive (reduced rows are stochastic by construction)")
	case o.RefinePasses < 0:
		return fmt.Errorf("partition: refine passes %d must be ≥ 0 (0 = default)", o.RefinePasses)
	case o.CheckpointEvery < 0:
		return fmt.Errorf("partition: checkpoint interval %d must be ≥ 0 (0 = default)", o.CheckpointEvery)
	case o.Precision != Precision64 && o.Precision != Precision32:
		return fmt.Errorf("partition: unknown precision %d (want Precision64 or Precision32)", o.Precision)
	case o.Precision == Precision32 && o.Gradient != GradientExact:
		return fmt.Errorf("partition: the float32 tier supports exact gradients only")
	case o.Precision == Precision32 && (o.ReduceDims || o.Renormalize):
		return fmt.Errorf("partition: ReduceDims/Renormalize are float64-only (the float32 tier runs the default clamped update)")
	}
	return validateTermSpecs(o.Terms)
}

func (o Options) withDefaults() Options {
	if o.Coeffs == (Coeffs{}) {
		o.Coeffs = DefaultCoeffs()
	}
	if o.Margin <= 0 {
		o.Margin = 1e-4
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 4000
	}
	// InitStep defaults to 0.25/K in Solve (needs the problem's K).
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	if o.Checkpoint != nil && o.CheckpointEvery == 0 {
		o.CheckpointEvery = 100
	}
	// Canonical term form: f1–f4 specs fold into the (now defaulted)
	// coefficients, regime terms get their defaults and a stable order.
	o.Coeffs, o.Terms = foldTerms(o.Coeffs, o.Terms)
	return o
}

// Result is the solver output.
type Result struct {
	// Labels is the discrete assignment: Labels[i] ∈ [0, K) is the plane of
	// gate i.
	Labels []int

	// W is the relaxed matrix at termination (before snapping).
	W W

	// Iters is the number of gradient iterations performed.
	Iters int

	// Converged reports whether the margin criterion (rather than the
	// iteration cap) stopped the loop.
	Converged bool

	// Relaxed is the cost at the final relaxed point; Discrete is the cost
	// of the snapped (and optionally refined) assignment.
	Relaxed, Discrete Breakdown

	// StepSize is the learning rate actually used.
	StepSize float64

	// CostTrace holds the total cost per iteration when Options.TraceCost
	// is set.
	CostTrace []float64

	// RefineMoves counts gates moved by the refinement pass (0 when
	// refinement is disabled).
	RefineMoves int
}

// Solve runs Algorithm 1 on the problem. The cost/gradient kernels run on
// opts.Workers goroutines; results are bitwise identical for every worker
// count (fixed shard decomposition, shard-order merges).
func (p *Problem) Solve(opts Options) (*Result, error) {
	return p.SolveCtx(context.Background(), opts)
}

// SolveCtx is Solve with cooperative cancellation: the context is checked
// once per gradient iteration, so a server deadline or client cancel stops
// a long descent within one iteration instead of running it to the cap.
// The partial state is discarded — a cancelled solve returns only the
// context's error.
func (p *Problem) SolveCtx(ctx context.Context, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	workers := pool.Resolve(opts.Workers)
	if opts.InitStep <= 0 {
		opts.InitStep = 0.25 / float64(p.K)
	}
	// Checkpoint/resume identity: both sides pin the snapshot to the
	// normalized options fingerprint (computed after the K-dependent
	// InitStep default resolves), so a checkpointed solve can only be
	// continued under the exact configuration that produced it.
	var ckptFP string
	if opts.Checkpoint != nil || opts.Resume != nil {
		fp, err := opts.Fingerprint()
		if err != nil {
			return nil, err
		}
		ckptFP = fp
	}
	if err := p.checkResume(opts.Resume, opts); err != nil {
		return nil, err
	}
	if opts.Precision == Precision32 {
		return p.solve32(ctx, opts, workers, ckptFP)
	}
	tracer := opts.Tracer
	// One persistent worker group per solve: the descent loop dispatches
	// ~4 shard kernels per iteration, and reusing parked workers turns each
	// dispatch from workers goroutine spawns + joins into one channel send
	// per worker. Close tears the goroutines down synchronously on every
	// return path, so solves never leak workers. A serial solve runs on
	// the nil group (inline shard loop, nothing to allocate or close).
	var grp *pool.Group
	if workers > 1 {
		grp = pool.NewGroup(workers)
	}
	defer grp.Close()
	sc := p.newScratch(grp)
	sc.wantNorm = tracer != nil
	if tracer != nil {
		// Neither event records the worker count: the shard layout is a
		// pure function of the problem size, and the trace stream must be
		// byte-identical across Workers settings (the manifest records
		// the environment; the trace records the algorithm).
		tracer.Emit(obs.Event{Kind: obs.KindSolveStart, Seed: opts.Seed,
			K: p.K, Gates: p.G, Edges: len(p.Edges)})
		tracer.Emit(obs.Event{Kind: obs.KindPool,
			GateShards: pool.Shards(p.G, gateChunk),
			EdgeShards: pool.Shards(len(p.Edges), edgeChunk)})
	}
	// Span instrumentation: one "descent" span from initialization to the
	// final relaxed cost. Checkpoint fsyncs get child spans below. All
	// nil-safe — a nil opts.Span is the (free) default, and spans taken on
	// an error path simply never emit.
	descent := opts.Span.Child("descent")
	var velocity []float64
	if opts.Momentum > 0 {
		velocity = make([]float64, p.G*p.K)
	}
	w := p.NewW()
	var step float64
	startIter := 0
	costOld := math.Inf(1)
	if snap := opts.Resume; snap != nil {
		// Continue the checkpointed trajectory: matrix, velocity, step,
		// stopping reference and iteration count restore exactly, and the
		// RNG initialization (the only randomness, consumed before
		// iteration 0) is skipped entirely.
		copy(w, snap.W)
		if velocity != nil {
			copy(velocity, snap.Velocity)
		}
		step = snap.Step
		costOld = snap.CostOld
		startIter = snap.Iter
	} else {
		p.randomInitW(w, opts.Seed)

		step = opts.LearnRate
		if step <= 0 {
			// Auto-calibrate: first step moves the largest entry by InitStep.
			// The full gradient array exists only here — the descent loop's
			// fused gradient+update pass never materializes one.
			grad := make([]float64, p.G*p.K)
			p.gradientWith(w, opts.Coeffs, opts.Gradient, grad, sc)
			maxAbs := 0.0
			for _, g := range grad {
				if a := math.Abs(g); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs == 0 {
				step = 1 // flat start; any step is a no-op until curvature appears
			} else {
				step = opts.InitStep / maxAbs
			}
		}
	}

	// Lines 17–24 run as the fused gradient+update pass (gradUpdateShard):
	// per-row gradient computation with the step, clamp, momentum and the
	// optional renormalize/dimension-reduction applied in place. Bind the
	// loop-constant inputs once.
	sc.setDescentState(p, opts.Coeffs, opts.Gradient, step, opts.Momentum,
		velocity, opts.ReduceDims, opts.Renormalize)

	res := &Result{StepSize: step, Iters: startIter}
	if opts.TraceCost && opts.Resume != nil {
		// The uninterrupted run traced iterations 0..startIter−1 too; the
		// snapshot carries that prefix so the resumed trace matches.
		res.CostTrace = append(res.CostTrace, opts.Resume.CostTrace...)
	}
	var relaxed Breakdown
	for iter := startIter; iter < opts.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			if serr := obs.SinkErr(tracer); serr != nil {
				return nil, fmt.Errorf("partition: trace sink: %w", serr)
			}
			return nil, fmt.Errorf("partition: solve cancelled after %d iterations: %w", iter, err)
		}
		// Lines 13 and 17–19, fused: one set of global reductions (labels,
		// per-plane sums, per-edge cubes) yields cost_new and everything
		// the gradient pass below needs (see DESIGN.md §10). The planner
		// arms the incremental skip masks when the previous update left
		// shards provably untouched (DESIGN.md §15); the first iteration
		// of a (possibly resumed) loop always full-sweeps.
		p.planIncremental(sc, !opts.NoIncremental, iter > startIter)
		bd := p.evalIter(w, opts.Coeffs, opts.Gradient, sc)
		costNew := bd.Total
		if opts.TraceCost {
			res.CostTrace = append(res.CostTrace, costNew)
		}
		// Line 14: relative stopping criterion, checked before any
		// gradient work — on the converged iteration the historical kernel
		// computed ∇F and discarded it unused, so breaking first is
		// bitwise invisible. Guard the division for costs near zero (F4
		// makes the total signed).
		if !math.IsInf(costOld, 1) {
			denom := math.Abs(costOld)
			if denom < 1e-12 {
				denom = 1e-12
			}
			if math.Abs(costNew-costOld)/denom <= opts.Margin {
				res.Converged = true
				res.Iters = iter
				// No update ran this iteration, so w is final and bd is
				// already the relaxed cost at it — no extra evaluation.
				relaxed = bd
				break
			}
		}
		costOld = costNew

		// Lines 17–24: the fused gradient+update pass (momentum, step,
		// clamp, optional renormalize/dimension reduction), which also
		// leaves the per-shard Σg² partials, clamp counts, and the dirty
		// flags the next iteration's planner reads.
		p.gradUpdate(sc)
		res.Iters = iter + 1
		if tracer != nil {
			// Per-shard partials merged in shard-index order: the fixed
			// merge order diffs clean across Workers settings.
			var sum float64
			for _, v := range sc.partNorm {
				sum += v
			}
			clamped := 0
			for _, c := range sc.clamp {
				clamped += c
			}
			tracer.Emit(obs.Event{Kind: obs.KindIter, Iter: iter,
				F: bd.Total, F1: bd.F1, F2: bd.F2, F3: bd.F3, F4: bd.F4,
				GradN: math.Sqrt(sum), Step: step, Clamped: clamped})
		}
		// The update completed, so w/velocity now sit on the iteration
		// boundary iter+1 with costNew as the next stopping reference —
		// exactly the state a resume needs to continue from here. The hook
		// path allocates (deep copies); the no-checkpoint path stays
		// allocation-free.
		if opts.Checkpoint != nil && (iter+1)%opts.CheckpointEvery == 0 {
			ck := descent.Child("checkpoint")
			ck.AttrInt("iter", int64(iter+1))
			snap := p.takeSnapshot(opts, ckptFP, iter+1, step, costNew, w, velocity, res.CostTrace)
			err := opts.Checkpoint(snap)
			ck.End()
			if err != nil {
				return nil, fmt.Errorf("partition: checkpoint at iteration %d: %w", iter+1, err)
			}
		}
	}

	res.W = w
	if !res.Converged {
		// Cap-terminated: the last update moved w after its evaluation,
		// so the final relaxed cost needs one more pass.
		relaxed = p.costWith(w, opts.Coeffs, sc)
	}
	return p.finalizeSolve(res, relaxed, opts, tracer, descent)
}

// randomInitW is lines 3–11 of Algorithm 1: random init, rows normalized
// to sum 1. The seed fully determines the matrix.
func (p *Problem) randomInitW(w W, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < p.G; i++ {
		row := w[i*p.K : (i+1)*p.K]
		var sum float64
		for k := range row {
			v := rng.Float64()
			row[k] = v
			sum += v
		}
		if sum == 0 {
			// Vanishingly unlikely; fall back to uniform.
			for k := range row {
				row[k] = 1 / float64(p.K)
			}
			continue
		}
		for k := range row {
			row[k] /= sum
		}
	}
}

// finalizeSolve is the precision-independent tail of a solve: snap to the
// discrete assignment, optionally refine, fill the discrete cost, emit the
// trailing telemetry, and bump the metrics. res.W, res.Iters, res.Converged
// and the trace must already be final.
func (p *Problem) finalizeSolve(res *Result, relaxed Breakdown, opts Options,
	tracer obs.Tracer, descent *obs.Span) (*Result, error) {
	res.Relaxed = relaxed
	descent.AttrInt("iters", int64(res.Iters))
	descent.End()
	// Lines 27–30: snap to argmax.
	res.Labels = p.Assign(res.W)
	if tracer != nil {
		// Discrete cost at the snap point, before any refinement; computed
		// only when traced (the refined cost below is what Result reports).
		tracer.Emit(obs.Event{Kind: obs.KindSnap,
			FDiscrete: p.DiscreteCost(res.Labels, opts.Coeffs).Total})
	}
	if opts.Refine {
		var onPass func(pass, moves int)
		if tracer != nil {
			onPass = func(pass, moves int) {
				tracer.Emit(obs.Event{Kind: obs.KindRefine, Pass: pass, Moves: moves})
			}
		}
		res.RefineMoves = p.refineTraced(res.Labels, opts.Coeffs, opts.RefinePasses, onPass)
	}
	res.Discrete = p.DiscreteCost(res.Labels, opts.Coeffs)
	if tracer != nil {
		tracer.Emit(obs.Event{Kind: obs.KindSolveDone, Iters: res.Iters,
			Converged: res.Converged, FRelaxed: res.Relaxed.Total,
			FDiscrete: res.Discrete.Total, Step: res.StepSize,
			RefineMoves: res.RefineMoves})
	}
	mSolves.Inc()
	mIters.Add(int64(res.Iters))
	if res.Converged {
		mConverged.Inc()
	}
	mItersPerSolve.Observe(float64(res.Iters))
	mRefineMoves.Add(int64(res.RefineMoves))
	if err := obs.SinkErr(tracer); err != nil {
		return nil, fmt.Errorf("partition: trace sink: %w", err)
	}
	return res, nil
}
