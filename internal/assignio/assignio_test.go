package assignio

import (
	"bytes"
	"strings"
	"testing"

	"gpp/internal/cellib"
	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
)

func fixture(t *testing.T) (*netlist.Circuit, []int) {
	t.Helper()
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	return c, res.Labels
}

func TestRoundTrip(t *testing.T) {
	c, labels := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, c, labels); err != nil {
		t.Fatal(err)
	}
	got, k, err := Read(bytes.NewReader(buf.Bytes()), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("gate %d: %d vs %d", i, got[i], labels[i])
		}
	}
	wantK := 0
	for _, lb := range labels {
		if lb+1 > wantK {
			wantK = lb + 1
		}
	}
	if k != wantK {
		t.Errorf("K = %d, want %d", k, wantK)
	}
}

func TestWriteErrors(t *testing.T) {
	c, labels := fixture(t)
	if err := Write(&bytes.Buffer{}, c, labels[:3]); err == nil {
		t.Error("short labels accepted")
	}
	bad := append([]int(nil), labels...)
	bad[0] = -1
	if err := Write(&bytes.Buffer{}, c, bad); err == nil {
		t.Error("negative plane accepted")
	}
}

func TestReadErrors(t *testing.T) {
	b := netlist.NewBuilder("tiny", cellib.Default())
	b.AddCell("a", cellib.KindDFF)
	b.AddCell("b", cellib.KindDFF)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"few fields", "a DFFT 1\n", "tab-separated"},
		{"unknown gate", "ghost\tDFFT\t1\n", "unknown gate"},
		{"bad plane", "a\tDFFT\tzero\n", "bad plane"},
		{"zero plane", "a\tDFFT\t0\n", "bad plane"},
		{"double assignment", "a\tDFFT\t1\na\tDFFT\t2\nb\tDFFT\t1\n", "assigned twice"},
		{"missing gate", "a\tDFFT\t1\n", "no assignment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Read(strings.NewReader(tc.src), c)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Read = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	b := netlist.NewBuilder("tiny", cellib.Default())
	b.AddCell("a", cellib.KindDFF)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	src := "# header\n\n  \na\tDFFT\t3\n"
	labels, k, err := Read(strings.NewReader(src), c)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 2 || k != 3 {
		t.Errorf("labels = %v, k = %d", labels, k)
	}
}

func TestReadPartial(t *testing.T) {
	c, labels := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, c, labels); err != nil {
		t.Fatal(err)
	}
	// Keep only the first half of the lines (plus header).
	lines := strings.Split(buf.String(), "\n")
	half := strings.Join(lines[:1+len(c.Gates)/2], "\n")
	got, _, err := ReadPartial(strings.NewReader(half), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(c.Gates)/2; i++ {
		if got[i] != labels[i] {
			t.Fatalf("gate %d: %d vs %d", i, got[i], labels[i])
		}
	}
	for i := len(c.Gates) / 2; i < len(c.Gates); i++ {
		if got[i] != -1 {
			t.Fatalf("gate %d should be unassigned, got %d", i, got[i])
		}
	}
	// Full Read on the truncated file must fail (completeness check).
	if _, _, err := Read(strings.NewReader(half), c); err == nil {
		t.Error("Read accepted a partial assignment")
	}
}
