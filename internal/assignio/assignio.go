// Package assignio reads and writes the gate→plane assignment TSV format
// shared by the command-line tools: one line per gate, tab-separated
// `gate-name  cell-name  plane` with 1-based planes and '#' comments.
package assignio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpp/internal/netlist"
)

// Write emits the assignment for every gate of the circuit in gate order.
func Write(w io.Writer, c *netlist.Circuit, labels []int) error {
	if len(labels) != c.NumGates() {
		return fmt.Errorf("assignio: %d labels for %d gates", len(labels), c.NumGates())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# gate\tcell\tplane\n")
	for i, g := range c.Gates {
		if labels[i] < 0 {
			return fmt.Errorf("assignio: gate %s has negative plane", g.Name)
		}
		fmt.Fprintf(bw, "%s\t%s\t%d\n", g.Name, g.Cell, labels[i]+1)
	}
	return bw.Flush()
}

// Read parses an assignment for the circuit. Every gate must be assigned
// exactly once; unknown gates and malformed lines are errors. Returns the
// 0-based labels and the plane count (the largest plane seen).
func Read(r io.Reader, c *netlist.Circuit) ([]int, int, error) {
	labels := make([]int, c.NumGates())
	for i := range labels {
		labels[i] = -1
	}
	ids := make(map[string]netlist.GateID, c.NumGates())
	for _, g := range c.Gates {
		ids[g.Name] = g.ID
	}
	maxPlane := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 3 {
			return nil, 0, fmt.Errorf("assignio: line %d: want 3 tab-separated fields, got %d", line, len(fields))
		}
		id, ok := ids[fields[0]]
		if !ok {
			return nil, 0, fmt.Errorf("assignio: line %d: unknown gate %q", line, fields[0])
		}
		plane, err := strconv.Atoi(fields[2])
		if err != nil || plane < 1 {
			return nil, 0, fmt.Errorf("assignio: line %d: bad plane %q", line, fields[2])
		}
		if labels[id] >= 0 {
			return nil, 0, fmt.Errorf("assignio: line %d: gate %q assigned twice", line, fields[0])
		}
		labels[id] = plane - 1
		if plane > maxPlane {
			maxPlane = plane
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	for i, lb := range labels {
		if lb < 0 {
			return nil, 0, fmt.Errorf("assignio: gate %s has no assignment", c.Gates[i].Name)
		}
	}
	return labels, maxPlane, nil
}

// ReadPartial parses an assignment that may cover only a subset of the
// circuit's gates (ECO flows grow a design after its assignment was
// written). Unassigned gates get label −1; duplicate assignments and
// unknown gates remain errors.
func ReadPartial(r io.Reader, c *netlist.Circuit) ([]int, int, error) {
	labels := make([]int, c.NumGates())
	for i := range labels {
		labels[i] = -1
	}
	ids := make(map[string]netlist.GateID, c.NumGates())
	for _, g := range c.Gates {
		ids[g.Name] = g.ID
	}
	maxPlane := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 3 {
			return nil, 0, fmt.Errorf("assignio: line %d: want 3 tab-separated fields, got %d", line, len(fields))
		}
		id, ok := ids[fields[0]]
		if !ok {
			return nil, 0, fmt.Errorf("assignio: line %d: unknown gate %q", line, fields[0])
		}
		plane, err := strconv.Atoi(fields[2])
		if err != nil || plane < 1 {
			return nil, 0, fmt.Errorf("assignio: line %d: bad plane %q", line, fields[2])
		}
		if labels[id] >= 0 {
			return nil, 0, fmt.Errorf("assignio: line %d: gate %q assigned twice", line, fields[0])
		}
		labels[id] = plane - 1
		if plane > maxPlane {
			maxPlane = plane
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return labels, maxPlane, nil
}
