package sweep

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpp/internal/partition"
)

// Doc is the serialized sweep-result document: the shape the serve daemon's
// POST /v1/sweeps and GET /v1/sweeps/{id} endpoints answer with, and the
// shape `gpp-sweep -json` writes for in-process runs. The two producers
// keep their own struct definitions (the daemon's carries typed statuses);
// the JSON field names here are the contract, and `gpp-inspect sweep`
// renders any document matching them.
type Doc struct {
	ID        string    `json:"id"`
	Status    string    `json:"status"`
	Circuit   string    `json:"circuit"`
	RankBy    string    `json:"rank_by"`
	Cells     []CellDoc `json:"cells"`
	Done      int       `json:"done"`
	Failed    int       `json:"failed"`
	Pending   int       `json:"pending"`
	Ranking   []int     `json:"ranking,omitempty"`
	Pareto    []int     `json:"pareto,omitempty"`
	Submitted string    `json:"submitted_at,omitempty"`
	Finished  string    `json:"finished_at,omitempty"`
}

// CellDoc is one scenario of a Doc. Cost and BMaxMA are pointers so a
// missing metric (failed or still-running cell) is distinguishable from a
// genuine zero.
type CellDoc struct {
	Index   int                  `json:"index"`
	JobID   string               `json:"job_id,omitempty"`
	Key     string               `json:"key,omitempty"`
	K       int                  `json:"k"`
	Regime  string               `json:"regime,omitempty"`
	Weights *WeightPoint         `json:"weights,omitempty"`
	Terms   []partition.TermSpec `json:"terms,omitempty"`
	Status  string               `json:"status"`
	Cache   string               `json:"cache,omitempty"`
	Cost    *float64             `json:"cost,omitempty"`
	BMaxMA  *float64             `json:"b_max_ma,omitempty"`
	Error   string               `json:"error,omitempty"`
}

// FormatTerms renders a term-spec list the way the gpp-partition -terms
// flag spells it: name[:weight[:param]], comma-joined, "-" when empty.
func FormatTerms(specs []partition.TermSpec) string {
	if len(specs) == 0 {
		return "-"
	}
	parts := make([]string, len(specs))
	for i, ts := range specs {
		s := ts.Name
		if ts.Weight != 0 || ts.Param != 0 {
			s += ":" + strconv.FormatFloat(ts.Weight, 'g', -1, 64)
		}
		if ts.Param != 0 {
			s += ":" + strconv.FormatFloat(ts.Param, 'g', -1, 64)
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}

// RenderTable writes the ranked sweep table: one header line, the ranked
// cells best-first, then the unranked (failed or unfinished) cells, then
// the Pareto front. This is the view `gpp-sweep` prints after a run and
// `gpp-inspect sweep` reproduces from a saved document.
func RenderTable(w io.Writer, d *Doc) {
	rankBy := d.RankBy
	if rankBy == "" {
		rankBy = RankByCost
	}
	fmt.Fprintf(w, "sweep %s: circuit %s, %d cells (%d done, %d failed, %d pending), status %s, ranked by %s\n",
		d.ID, d.Circuit, len(d.Cells), d.Done, d.Failed, d.Pending, d.Status, rankBy)
	byIndex := make(map[int]*CellDoc, len(d.Cells))
	for i := range d.Cells {
		byIndex[d.Cells[i].Index] = &d.Cells[i]
	}
	fmt.Fprintf(w, "  %4s %4s %3s %-14s %-28s %12s %10s %-5s %s\n",
		"rank", "cell", "k", "regime", "terms", "cost", "B_max mA", "cache", "status")
	row := func(rank string, c *CellDoc) {
		cost, bmax := "-", "-"
		if c.Cost != nil {
			cost = strconv.FormatFloat(*c.Cost, 'f', 6, 64)
		}
		if c.BMaxMA != nil {
			bmax = strconv.FormatFloat(*c.BMaxMA, 'f', 2, 64)
		}
		cache := c.Cache
		if cache == "" {
			cache = "-"
		}
		status := c.Status
		if c.Error != "" {
			status += ": " + c.Error
		}
		regime := c.Regime
		if regime == "" {
			regime = "-"
		}
		fmt.Fprintf(w, "  %4s %4d %3d %-14s %-28s %12s %10s %-5s %s\n",
			rank, c.Index, c.K, regime, FormatTerms(c.Terms), cost, bmax, cache, status)
	}
	ranked := make(map[int]bool, len(d.Ranking))
	for pos, idx := range d.Ranking {
		ranked[idx] = true
		if c := byIndex[idx]; c != nil {
			row(strconv.Itoa(pos+1), c)
		}
	}
	for i := range d.Cells {
		if c := &d.Cells[i]; !ranked[c.Index] {
			row("-", c)
		}
	}
	if len(d.Pareto) > 0 {
		fmt.Fprintf(w, "  pareto front (cost vs B_max): cells %v\n", d.Pareto)
	}
}
