package sweep

import (
	"reflect"
	"testing"

	"gpp/internal/partition"
)

func TestExpandCrossProduct(t *testing.T) {
	spec := Spec{
		Ks:     []int{3},
		KRange: &KRange{From: 4, To: 6, Step: 2},
		Weights: []WeightPoint{
			{},
			{F2: 2},
		},
		Regimes: []Regime{
			{Name: "base"},
			{Name: "xesfq", Terms: []partition.TermSpec{{Name: "xesfq"}}},
		},
	}
	cells, err := Expand(spec, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// 3 Ks × 2 weight points × 2 regimes.
	if len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	wantKs := []int{3, 3, 3, 3, 4, 4, 4, 4, 6, 6, 6, 6}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if c.K != wantKs[i] {
			t.Errorf("cell %d K = %d, want %d", i, c.K, wantKs[i])
		}
	}
	// Second weight point carries an f2 term; the xesfq regime keeps its
	// own term alongside it.
	c := cells[3] // K=3, weights {F2:2}, regime xesfq
	want := []partition.TermSpec{{Name: "xesfq"}, {Name: "f2", Weight: 2}}
	if !reflect.DeepEqual(c.Terms, want) {
		t.Errorf("cell 3 terms = %+v, want %+v", c.Terms, want)
	}
	if c.Regime != "xesfq" || c.Weights == nil || c.Weights.F2 != 2 {
		t.Errorf("cell 3 metadata wrong: %+v", c)
	}
}

func TestExpandDefaults(t *testing.T) {
	cells, err := Expand(Spec{}, 5)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(cells) != 1 || cells[0].K != 5 || len(cells[0].Terms) != 0 {
		t.Fatalf("default expansion = %+v, want one bare K=5 cell", cells)
	}
}

func TestExpandMergesWeightIntoRegimeFTerm(t *testing.T) {
	spec := Spec{
		Ks:      []int{2},
		Weights: []WeightPoint{{F2: 0.5}},
		Regimes: []Regime{{Name: "r", Terms: []partition.TermSpec{{Name: "f2", Weight: 4}}}},
	}
	cells, err := Expand(spec, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(cells) != 1 || len(cells[0].Terms) != 1 || cells[0].Terms[0].Weight != 2 {
		t.Fatalf("merge = %+v, want one f2 term with weight 2", cells[0].Terms)
	}
}

func TestExpandRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		defK int
	}{
		{"no k axis", Spec{}, 0},
		{"k below 1", Spec{Ks: []int{0}}, 0},
		{"bad range", Spec{KRange: &KRange{From: 5, To: 3}}, 0},
		{"negative step", Spec{KRange: &KRange{From: 1, To: 3, Step: -1}}, 0},
		{"bad rank_by", Spec{Ks: []int{2}, RankBy: "speed"}, 0},
		{"negative weight", Spec{Ks: []int{2}, Weights: []WeightPoint{{F1: -1}}}, 0},
		{"unnamed portfolio", Spec{Ks: []int{2}, Regimes: []Regime{{}, {Name: "b"}}}, 0},
		{"dup regime", Spec{Ks: []int{2}, Regimes: []Regime{{Name: "a"}, {Name: "a"}}}, 0},
		{"negative timeout", Spec{Ks: []int{2}, Regimes: []Regime{{Name: "a", TimeoutMS: -1}}}, 0},
		{"over cap", Spec{KRange: &KRange{From: 1, To: 500}}, 0},
	}
	for _, tc := range cases {
		if _, err := Expand(tc.spec, tc.defK); err == nil {
			t.Errorf("%s: expansion accepted, want error", tc.name)
		}
	}
}

func TestExpandDedupesKs(t *testing.T) {
	cells, err := Expand(Spec{Ks: []int{4, 4}, KRange: &KRange{From: 4, To: 5}}, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(cells) != 2 || cells[0].K != 4 || cells[1].K != 5 {
		t.Fatalf("dedupe = %+v, want Ks 4,5", cells)
	}
}

func TestRankExcludesFailedCells(t *testing.T) {
	outs := []Outcome{
		{Index: 0, Cost: 3, BMax: 10},
		{Index: 1, Failed: true, Cost: 0, BMax: 0}, // would win both metrics
		{Index: 2, Cost: 1, BMax: 30},
		{Index: 3, Cost: 2, BMax: 20},
	}
	if got := Rank(outs, ""); !reflect.DeepEqual(got, []int{2, 3, 0}) {
		t.Errorf("Rank(cost) = %v, want [2 3 0]", got)
	}
	if got := Rank(outs, RankByBMax); !reflect.DeepEqual(got, []int{0, 3, 2}) {
		t.Errorf("Rank(b_max) = %v, want [0 3 2]", got)
	}
}

func TestRankTiesBreakByIndex(t *testing.T) {
	outs := []Outcome{
		{Index: 0, Cost: 1, BMax: 1},
		{Index: 1, Cost: 1, BMax: 1},
	}
	if got := Rank(outs, ""); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Rank = %v, want [0 1]", got)
	}
}

func TestParetoFront(t *testing.T) {
	outs := []Outcome{
		{Index: 0, Cost: 1, BMax: 30},
		{Index: 1, Cost: 2, BMax: 20},              // on the front
		{Index: 2, Cost: 3, BMax: 25},              // dominated by 1
		{Index: 3, Cost: 4, BMax: 10},              // on the front
		{Index: 4, Failed: true, Cost: 0, BMax: 0}, // failed: excluded
	}
	if got := ParetoFront(outs); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Errorf("ParetoFront = %v, want [0 1 3]", got)
	}
}
