// Package sweep expands a declarative multi-scenario specification — K
// ranges, c-weight grids, and a regime portfolio of cost-term sets — into
// the flat cell matrix a batch sweep runs, and ranks the finished cells.
//
// The package is deliberately inert: it knows nothing about HTTP, queues,
// or solvers. Expand produces cells whose identity is (K, merged term
// specs); the serve layer turns each cell into an ordinary content-
// addressed job (so cells are cache-hittable and cluster-stealable for
// free), and Rank/ParetoFront summarize whatever outcomes came back.
// Failed cells never poison a batch: ranking and the Pareto front skip
// them, and the caller reports them with their errors instead.
package sweep

import (
	"fmt"
	"math"
	"sort"

	"gpp/internal/partition"
)

// MaxCellsDefault bounds an expansion when the spec does not set its own
// cap; a sweep is one API call, not a denial-of-service vector.
const MaxCellsDefault = 256

// RankBy values accepted by Spec.RankBy.
const (
	RankByCost = "cost"  // discrete total cost, ascending (the default)
	RankByBMax = "b_max" // worst per-plane bias current, ascending
)

// Spec is the declarative sweep request: the cross product of the K axis,
// the c-weight grid, and the regime portfolio. Empty axes collapse to a
// single default point, so any subset of the three may be swept.
type Spec struct {
	// Ks lists explicit plane counts; KRange appends an inclusive
	// arithmetic range. At least one K must result (from either axis or
	// the caller's default).
	Ks     []int   `json:"ks,omitempty"`
	KRange *KRange `json:"k_range,omitempty"`

	// Weights is the c-weight grid: each point scales the paper's four
	// objective coefficients via the f1–f4 terms (zero fields keep the
	// default weight 1). Pairing points with RankBy over two metrics is
	// how a Pareto front over the cost trade-off is swept.
	Weights []WeightPoint `json:"weights,omitempty"`

	// Regimes is the portfolio of named term sets to run every (K, weight)
	// point under. An empty list means one unnamed default regime.
	Regimes []Regime `json:"regimes,omitempty"`

	// RankBy selects the ranking metric: "cost" (default) or "b_max".
	RankBy string `json:"rank_by,omitempty"`

	// MaxCells caps the expansion (default MaxCellsDefault). A spec that
	// expands past the cap is rejected, never silently truncated.
	MaxCells int `json:"max_cells,omitempty"`
}

// KRange is an inclusive arithmetic K progression: From, From+Step, …, To.
type KRange struct {
	From int `json:"from"`
	To   int `json:"to"`
	Step int `json:"step,omitempty"` // default 1
}

// WeightPoint scales the four paper coefficients; a zero field means "keep
// the default weight 1" (matching the f-terms' canonical convention).
type WeightPoint struct {
	F1 float64 `json:"f1,omitempty"`
	F2 float64 `json:"f2,omitempty"`
	F3 float64 `json:"f3,omitempty"`
	F4 float64 `json:"f4,omitempty"`
}

// zero reports whether the point is all-default.
func (w WeightPoint) zero() bool { return w.F1 == 0 && w.F2 == 0 && w.F3 == 0 && w.F4 == 0 }

// terms renders the point as f-term specs (only non-default fields emit).
func (w WeightPoint) terms() []partition.TermSpec {
	var out []partition.TermSpec
	for _, t := range []struct {
		name string
		w    float64
	}{{"f1", w.F1}, {"f2", w.F2}, {"f3", w.F3}, {"f4", w.F4}} {
		if t.w != 0 {
			out = append(out, partition.TermSpec{Name: t.name, Weight: t.w})
		}
	}
	return out
}

// Regime is one named term set of the portfolio. TimeoutMS, when set,
// overrides the sweep's per-cell deadline for this regime's cells (heavier
// regimes can buy more budget; the satellite deadline test injects a tiny
// one here).
type Regime struct {
	Name      string               `json:"name"`
	Terms     []partition.TermSpec `json:"terms,omitempty"`
	TimeoutMS int64                `json:"timeout_ms,omitempty"`
}

// Cell is one expanded scenario: a concrete K plus the merged term specs
// (regime terms with the weight point's f-terms folded in). Index is the
// cell's stable position in the matrix — the handle every ranked summary
// refers back to.
type Cell struct {
	Index     int                  `json:"index"`
	K         int                  `json:"k"`
	Regime    string               `json:"regime,omitempty"`
	Weights   *WeightPoint         `json:"weights,omitempty"`
	Terms     []partition.TermSpec `json:"terms,omitempty"`
	TimeoutMS int64                `json:"timeout_ms,omitempty"`
}

// Expand validates the spec and produces the cell matrix in deterministic
// order: K outermost, weight points next, regimes innermost. defaultK is
// used when the spec declares no K axis (0 means the axis is required).
func Expand(s Spec, defaultK int) ([]Cell, error) {
	ks, err := expandKs(s, defaultK)
	if err != nil {
		return nil, err
	}
	switch s.RankBy {
	case "", RankByCost, RankByBMax:
	default:
		return nil, fmt.Errorf("sweep: bad rank_by %q; valid: %s, %s", s.RankBy, RankByCost, RankByBMax)
	}
	maxCells := s.MaxCells
	if maxCells <= 0 {
		maxCells = MaxCellsDefault
	}
	weights := s.Weights
	if len(weights) == 0 {
		weights = []WeightPoint{{}}
	}
	for _, w := range weights {
		for _, v := range []float64{w.F1, w.F2, w.F3, w.F4} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("sweep: weight point values must be finite and non-negative, got %v", v)
			}
		}
	}
	regimes := s.Regimes
	if len(regimes) == 0 {
		regimes = []Regime{{}}
	}
	seen := make(map[string]bool, len(regimes))
	for i, r := range regimes {
		if r.Name == "" && len(regimes) > 1 {
			return nil, fmt.Errorf("sweep: regime %d needs a name (portfolios are reported by regime)", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("sweep: duplicate regime name %q", r.Name)
		}
		seen[r.Name] = true
		if r.TimeoutMS < 0 {
			return nil, fmt.Errorf("sweep: regime %q timeout_ms must be ≥ 0", r.Name)
		}
	}
	total := len(ks) * len(weights) * len(regimes)
	if total > maxCells {
		return nil, fmt.Errorf("sweep: spec expands to %d cells, cap is %d (raise max_cells deliberately)", total, maxCells)
	}
	cells := make([]Cell, 0, total)
	for _, k := range ks {
		for wi := range weights {
			for _, r := range regimes {
				terms, err := mergeTerms(r.Terms, weights[wi])
				if err != nil {
					return nil, fmt.Errorf("sweep: regime %q: %w", r.Name, err)
				}
				cell := Cell{
					Index:     len(cells),
					K:         k,
					Regime:    r.Name,
					Terms:     terms,
					TimeoutMS: r.TimeoutMS,
				}
				if !weights[wi].zero() {
					w := weights[wi]
					cell.Weights = &w
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

func expandKs(s Spec, defaultK int) ([]int, error) {
	ks := append([]int(nil), s.Ks...)
	if r := s.KRange; r != nil {
		step := r.Step
		if step == 0 {
			step = 1
		}
		if step < 0 {
			return nil, fmt.Errorf("sweep: k_range step must be ≥ 1, got %d", step)
		}
		if r.To < r.From {
			return nil, fmt.Errorf("sweep: k_range to (%d) < from (%d)", r.To, r.From)
		}
		for k := r.From; k <= r.To; k += step {
			ks = append(ks, k)
		}
	}
	if len(ks) == 0 {
		if defaultK < 1 {
			return nil, fmt.Errorf("sweep: spec declares no K axis (set ks, k_range, or a top-level k)")
		}
		ks = []int{defaultK}
	}
	seen := make(map[int]bool, len(ks))
	out := ks[:0]
	for _, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("sweep: k must be ≥ 1, got %d", k)
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out, nil
}

// mergeTerms combines a regime's term set with a weight point. A weight
// point's f-term multiplies the weight of a matching regime f-term (the
// f-terms fold multiplicatively into the coefficients anyway, so a regime
// that pins f2=2 under a grid point f2=0.5 runs at net weight 1); any
// other term passes through untouched.
func mergeTerms(regime []partition.TermSpec, w WeightPoint) ([]partition.TermSpec, error) {
	out := append([]partition.TermSpec(nil), regime...)
	for _, ft := range w.terms() {
		merged := false
		for i := range out {
			if out[i].Name == ft.Name {
				base := out[i].Weight
				if base == 0 {
					base = 1
				}
				out[i].Weight = base * ft.Weight
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, ft)
		}
	}
	return out, nil
}

// Outcome is one finished cell's ranking inputs. Failed cells carry
// Failed=true and are excluded from every summary.
type Outcome struct {
	Index  int     `json:"index"`
	Failed bool    `json:"failed,omitempty"`
	Cost   float64 `json:"cost"`
	BMax   float64 `json:"b_max"`
}

// Rank returns the cell indices of the non-failed outcomes, best first
// under the given metric ("" means RankByCost). Ties break by cell index,
// so the ranking is deterministic.
func Rank(outs []Outcome, rankBy string) []int {
	metric := func(o Outcome) float64 { return o.Cost }
	if rankBy == RankByBMax {
		metric = func(o Outcome) float64 { return o.BMax }
	}
	live := make([]Outcome, 0, len(outs))
	for _, o := range outs {
		if !o.Failed {
			live = append(live, o)
		}
	}
	sort.SliceStable(live, func(i, j int) bool {
		mi, mj := metric(live[i]), metric(live[j])
		if mi != mj {
			return mi < mj
		}
		return live[i].Index < live[j].Index
	})
	idx := make([]int, len(live))
	for i, o := range live {
		idx[i] = o.Index
	}
	return idx
}

// ParetoFront returns the indices of the non-failed outcomes that are not
// dominated in (Cost, BMax) — both minimized — ordered by ascending Cost
// (ties by index). A point dominates another when it is no worse on both
// metrics and strictly better on at least one.
func ParetoFront(outs []Outcome) []int {
	live := make([]Outcome, 0, len(outs))
	for _, o := range outs {
		if !o.Failed {
			live = append(live, o)
		}
	}
	sort.SliceStable(live, func(i, j int) bool {
		if live[i].Cost != live[j].Cost {
			return live[i].Cost < live[j].Cost
		}
		if live[i].BMax != live[j].BMax {
			return live[i].BMax < live[j].BMax
		}
		return live[i].Index < live[j].Index
	})
	var front []int
	bestBMax := math.Inf(1)
	for _, o := range live {
		if o.BMax < bestBMax {
			front = append(front, o.Index)
			bestBMax = o.BMax
		}
	}
	return front
}
