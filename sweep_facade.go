package gpp

import (
	"context"
	"fmt"

	"gpp/internal/partition"
	"gpp/internal/recycle"
	"gpp/internal/serve"
	"gpp/internal/sweep"
	"gpp/internal/terms"
)

// Cost-term registry and batch-sweep facade. The registry turns the fixed
// F1–F4 objective into a pluggable term set: named specs in Options.Terms
// select and weight terms, three regime terms ship built in (xesfq,
// current_limit, timing_critical), and RegisterTerm adds user-defined
// ones. Sweep expands a declarative multi-scenario spec in process; the
// serve daemon exposes the same expansion as POST /v1/sweeps with cells
// running as cached, cluster-stealable jobs.

type (
	// TermSpec names one cost term with its weight (0 = the term's
	// default) and optional parameter; set them in Options.Terms.
	TermSpec = partition.TermSpec
	// Term is a pluggable cost term: Canon validates/normalizes a spec,
	// Compile emits the precomputed kernel tables for one circuit.
	Term = terms.Term
	// TermTables is a compiled term's contribution (bias scales, edge
	// drops/weights, per-plane penalties).
	TermTables = terms.Compiled
	// SweepSpec is the declarative scenario matrix: K axis, c-weight
	// grid, regime portfolio, ranking metric.
	SweepSpec = sweep.Spec
	// SweepKRange is an inclusive arithmetic K progression.
	SweepKRange = sweep.KRange
	// SweepWeightPoint scales the paper coefficients c1..c4 for one grid
	// point.
	SweepWeightPoint = sweep.WeightPoint
	// SweepRegime is one named term set of a sweep portfolio.
	SweepRegime = sweep.Regime
	// SweepRequest is the POST /v1/sweeps submission document for the
	// serve daemon.
	SweepRequest = serve.SweepRequest
)

// RegisterTerm adds a cost term to the registry; its name becomes valid in
// Options.Terms, sweep regimes, and serve requests, and folds into option
// fingerprints and cache keys like the built-ins.
func RegisterTerm(t Term) { terms.Register(t) }

// RegisteredTerms lists every registered term name, sorted.
func RegisteredTerms() []string { return terms.Names() }

// SweepCell is one solved scenario of an in-process sweep.
type SweepCell struct {
	// K, Regime, and Terms identify the scenario (Index is its position
	// in the expanded matrix, the handle Ranking and Pareto refer to).
	Index  int
	K      int
	Regime string
	Terms  []TermSpec
	// Result holds the solved partition and metrics; nil when the cell
	// failed, with Err saying why. Failed cells are excluded from the
	// ranking and the Pareto front but never abort the sweep.
	Result *Result
	Err    error
	// Cost and BMaxMA are the ranking metrics (discrete total cost and
	// worst per-plane bias).
	Cost   float64
	BMaxMA float64
}

// SweepResult is a finished in-process sweep: every cell plus the ranked
// summary.
type SweepResult struct {
	Cells []SweepCell
	// Ranking lists cell indices best-first under the spec's rank_by
	// metric; Pareto the non-dominated cells in (cost, B_max).
	Ranking []int
	Pareto  []int
}

// Best returns the top-ranked cell, or nil when every cell failed.
func (r *SweepResult) Best() *SweepCell {
	if len(r.Ranking) == 0 {
		return nil
	}
	return &r.Cells[r.Ranking[0]]
}

// Sweep solves the full scenario matrix in process — K ranges, c-weight
// grid points, and regime term sets — and ranks the outcomes. For the
// daemon-backed equivalent (cached, cluster-distributed cells) POST the
// same spec to /v1/sweeps.
func Sweep(c *Circuit, spec SweepSpec, base Options) (*SweepResult, error) {
	return SweepCtx(context.Background(), c, spec, base)
}

// SweepCtx is Sweep under a context: cancellation stops between gradient
// iterations and fails the remaining cells (the finished ones keep their
// results), then surfaces ctx's error.
func SweepCtx(ctx context.Context, c *Circuit, spec SweepSpec, base Options) (*SweepResult, error) {
	cells, err := sweep.Expand(spec, 0)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Cells: make([]SweepCell, len(cells))}
	outcomes := make([]sweep.Outcome, len(cells))
	for i, cell := range cells {
		sc := SweepCell{Index: cell.Index, K: cell.K, Regime: cell.Regime, Terms: cell.Terms}
		opts := base
		opts.Terms = append(append([]TermSpec(nil), base.Terms...), cell.Terms...)
		res, cost, bmax, err := solveCell(ctx, c, cell.K, opts)
		if err != nil {
			sc.Err = fmt.Errorf("gpp: sweep cell %d (k=%d regime=%q): %w", cell.Index, cell.K, cell.Regime, err)
			outcomes[i] = sweep.Outcome{Index: cell.Index, Failed: true}
		} else {
			sc.Result, sc.Cost, sc.BMaxMA = res, cost, bmax
			outcomes[i] = sweep.Outcome{Index: cell.Index, Cost: cost, BMax: bmax}
		}
		out.Cells[i] = sc
		if ctx.Err() != nil {
			for j := i + 1; j < len(cells); j++ {
				out.Cells[j] = SweepCell{
					Index: cells[j].Index, K: cells[j].K, Regime: cells[j].Regime,
					Terms: cells[j].Terms, Err: ctx.Err(),
				}
				outcomes[j] = sweep.Outcome{Index: cells[j].Index, Failed: true}
			}
			break
		}
	}
	out.Ranking = sweep.Rank(outcomes, spec.RankBy)
	out.Pareto = sweep.ParetoFront(outcomes)
	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("gpp: sweep: %w", err)
	}
	return out, nil
}

func solveCell(ctx context.Context, c *Circuit, k int, opts Options) (*Result, float64, float64, error) {
	p, opts, err := terms.BuildProblem(c, k, opts, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	res, err := p.SolveCtx(ctx, opts)
	if err != nil {
		return nil, 0, 0, err
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		return nil, 0, 0, err
	}
	r := &Result{K: k, Labels: res.Labels, Metrics: m, Iters: res.Iters, Converged: res.Converged}
	return r, res.Discrete.Total, m.BMax, nil
}
