package gpp

import (
	"bytes"
	"strings"
	"testing"
)

func partitioned(t *testing.T, name string, k int) (*Circuit, *Result) {
	t.Helper()
	c, err := Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(c, k, Options{Seed: 1, MaxIters: 800})
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

func TestPlaceAndPlacedDEFRoundTrip(t *testing.T) {
	c, res := partitioned(t, "KSA4", 4)
	pl, err := Place(c, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlacedDEF(&buf, c, pl); err != nil {
		t.Fatal(err)
	}
	labels, k, err := ReadPlanesDEF(bytes.NewReader(buf.Bytes()), c)
	if err != nil {
		t.Fatal(err)
	}
	if k != res.K {
		t.Fatalf("recovered K = %d, want %d", k, res.K)
	}
	for i := range labels {
		if labels[i] != res.Labels[i] {
			t.Fatalf("gate %d plane %d, want %d", i, labels[i], res.Labels[i])
		}
	}
}

func TestTimingImpact(t *testing.T) {
	c, res := partitioned(t, "KSA8", 5)
	base, err := AnalyzeTiming(c)
	if err != nil {
		t.Fatal(err)
	}
	if base.MaxFreqGHz <= 0 || base.Stages == 0 {
		t.Fatalf("base analysis: %+v", base)
	}
	pen, err := TimingImpact(c, res)
	if err != nil {
		t.Fatal(err)
	}
	if pen.FreqRatio <= 0 || pen.FreqRatio > 1 {
		t.Errorf("frequency ratio %g", pen.FreqRatio)
	}
}

func TestPowerImpact(t *testing.T) {
	c, res := partitioned(t, "KSA8", 5)
	plan, err := PlanRecycling(c, res)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := PowerImpact(c, plan)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CurrentReduction <= 1 {
		t.Errorf("current reduction %.2f", cmp.CurrentReduction)
	}
}

func TestVerifyCleanResult(t *testing.T) {
	c, res := partitioned(t, "KSA8", 5)
	if issues := Verify(c, res, 0); len(issues) != 0 {
		t.Errorf("clean result reported issues: %v", issues)
	}
	plan, err := PlanRecycling(c, res)
	if err != nil {
		t.Fatal(err)
	}
	if issues := VerifyPlan(c, res, plan); len(issues) != 0 {
		t.Errorf("clean plan reported issues: %v", issues)
	}
	// A limit below the achieved B_max must surface.
	if issues := Verify(c, res, res.Metrics.BMax-1); len(issues) == 0 {
		t.Error("supply violation not reported")
	}
}

func TestPartitionBalancedBound(t *testing.T) {
	c, err := Benchmark("KSA8")
	if err != nil {
		t.Fatal(err)
	}
	const slack = 0.05
	res, err := PartitionBalanced(c, 5, Options{Seed: 1, MaxIters: 800}, slack)
	if err != nil {
		t.Fatal(err)
	}
	bound := c.TotalBias() / 5 * (1 + slack)
	if res.Metrics.BMax > bound+1e-9 {
		t.Errorf("B_max %.3f above balanced bound %.3f", res.Metrics.BMax, bound)
	}
}

func TestPartitionBestNotWorseThanSingle(t *testing.T) {
	c, err := Benchmark("KSA4")
	if err != nil {
		t.Fatal(err)
	}
	single, err := Partition(c, 5, Options{Seed: 1, MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	best, err := PartitionBest(c, 5, Options{Seed: 1, MaxIters: 400}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Compare on I_comp (a reasonable proxy; the true criterion is the
	// discrete cost, which PartitionBest minimizes internally).
	if best.Metrics == nil || single.Metrics == nil {
		t.Fatal("metrics missing")
	}
}

func TestSimulateFacade(t *testing.T) {
	c, err := Benchmark("KSA4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, map[string]bool{"a0": true, "b0": true})
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 1 = 2: s1 pulses, s0 does not.
	if !res.Outputs["OUTPUT_s1"] || res.Outputs["OUTPUT_s0"] {
		t.Errorf("1+1 gave outputs %v", res.Outputs)
	}
}

func TestMeasureActivityFacade(t *testing.T) {
	c, err := Benchmark("KSA8")
	if err != nil {
		t.Fatal(err)
	}
	act, err := MeasureActivity(c, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if act <= 0 || act >= 1 {
		t.Errorf("activity = %g", act)
	}
	if _, err := MeasureActivity(c, 0, 1); err == nil {
		t.Error("zero waves accepted")
	}
}

func TestSVGFacade(t *testing.T) {
	c, res := partitioned(t, "KSA4", 4)
	pl, err := Place(c, res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLayoutSVG(&buf, pl); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty layout SVG")
	}
	plan, err := PlanRecycling(c, res)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteStackSVG(&buf, plan); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty stack SVG")
	}
}

func TestExtendPartitionFacade(t *testing.T) {
	c, res := partitioned(t, "KSA4", 4)
	grown := c.Clone()
	lib := DefaultLibrary()
	dff, _ := lib.ByName("DFFT")
	id := len(grown.Gates)
	grown.Gates = append(grown.Gates, Gate{
		ID: GateID(id), Name: "eco_new", Cell: "DFFT", Bias: dff.Bias, Area: dff.Area(),
	})
	grown.Edges = append(grown.Edges, Edge{From: 0, To: GateID(id)})
	labels, adjusted, err := ExtendPartition(grown, 4, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != grown.NumGates() {
		t.Fatal("labels wrong length")
	}
	if adjusted > grown.NumGates()/10 {
		t.Errorf("ECO moved %d gates for a one-gate edit", adjusted)
	}
}

func TestExtractPlanesFacade(t *testing.T) {
	c, res := partitioned(t, "KSA8", 5)
	blocks, err := ExtractPlanes(c, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 5 {
		t.Fatalf("%d blocks", len(blocks))
	}
	total := 0
	for _, b := range blocks {
		total += b.Circuit.NumGates()
		// Each block is a valid standalone netlist exportable as DEF.
		var buf bytes.Buffer
		if err := WriteDEF(&buf, b.Circuit); err != nil {
			t.Fatalf("plane %d DEF export: %v", b.Plane, err)
		}
	}
	if total != c.NumGates() {
		t.Error("blocks do not cover the circuit")
	}
}

func TestRouteChannelsFacade(t *testing.T) {
	c, res := partitioned(t, "KSA8", 5)
	pl, err := Place(c, res)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := RouteChannels(c, res, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Channels) != res.K-1 {
		t.Errorf("%d channels for K=%d", len(rt.Channels), res.K)
	}
	if rt.MaxTracks <= 0 {
		t.Error("no congestion measured")
	}
}

func TestWriteVerilogFacade(t *testing.T) {
	c, res := partitioned(t, "KSA4", 4)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "module KSA4") || !strings.Contains(out, "ground_plane") {
		t.Errorf("verilog output incomplete:\n%.200s", out)
	}
	buf.Reset()
	if err := WriteVerilog(&buf, c, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "ground_plane") {
		t.Error("plane attributes emitted without a result")
	}
}
