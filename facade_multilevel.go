package gpp

import (
	"context"

	"gpp/internal/multilevel"
	"gpp/internal/partition"
	"gpp/internal/recycle"
)

// Multilevel facade: the V-cycle partitioner for instances far beyond the
// paper's Table I scale (hundreds of thousands to millions of gates),
// with the same quality metrics and the same two invariants as the flat
// solver — bitwise-identical results at every worker count, and durable
// checkpoint/resume (per hierarchy level, via the VSnapshot codec).

type (
	// MultilevelOptions configures the V-cycle (coarsening bounds, inner
	// solver options, per-level refine budget, checkpointing).
	MultilevelOptions = multilevel.Options
	// MultilevelResult is the V-cycle outcome with hierarchy statistics.
	MultilevelResult = multilevel.Result
	// VSnapshot is a complete V-cycle checkpoint (hierarchy position plus
	// the live level's solver state).
	VSnapshot = multilevel.VSnapshot
)

// EncodeVSnapshot serializes a V-cycle checkpoint to its versioned,
// CRC-framed binary format.
func EncodeVSnapshot(s *VSnapshot) []byte { return multilevel.EncodeVSnapshot(s) }

// DecodeVSnapshot parses and validates the binary V-cycle checkpoint
// format; malformed input returns a descriptive error, never a panic.
func DecodeVSnapshot(raw []byte) (*VSnapshot, error) { return multilevel.DecodeVSnapshot(raw) }

// PartitionMultilevel splits the circuit into k planes with the multilevel
// V-cycle: heavy-edge-matching coarsening, a full gradient-descent solve
// of the coarsest instance, and per-level projection plus band-limited
// refinement back up to the original circuit. For Table I-scale circuits
// Partition is usually the better choice; the V-cycle's advantage starts
// where the flat descent's per-iteration cost does not fit the time
// budget (≳10⁵ gates).
func PartitionMultilevel(c *Circuit, k int, opts MultilevelOptions) (*Result, *MultilevelResult, error) {
	return PartitionMultilevelCtx(context.Background(), c, k, opts)
}

// PartitionMultilevelCtx is PartitionMultilevel with cooperative
// cancellation: the context is checked once per inner gradient iteration
// at every level, so a deadline or cancel stops the cycle promptly.
func PartitionMultilevelCtx(ctx context.Context, c *Circuit, k int, opts MultilevelOptions) (*Result, *MultilevelResult, error) {
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, nil, err
	}
	ml, err := multilevel.PartitionCtx(ctx, p, opts)
	if err != nil {
		return nil, nil, err
	}
	m, err := recycle.Evaluate(p, ml.Labels)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{K: k, Labels: ml.Labels, Metrics: m, Iters: ml.Iters, Converged: ml.Converged}
	return res, ml, nil
}
