package gpp

import (
	"io"

	"gpp/internal/obs"
)

// Observability facade: the solver telemetry subsystem (internal/obs)
// re-exported for downstream users. A Tracer plugged into Options.Tracer
// receives structured events for every solver phase; TraceWriter is the
// JSONL sink whose output `gpp-inspect trace` digests; Registry is the
// metrics registry the CLIs serve on -metrics-addr.

type (
	// Tracer receives structured solver telemetry events (assign one to
	// Options.Tracer). Nil means tracing off, at zero cost.
	Tracer = obs.Tracer
	// TraceEvent is one telemetry event (kind plus the fields meaningful
	// for that kind).
	TraceEvent = obs.Event
	// TraceKind identifies a TraceEvent's type.
	TraceKind = obs.Kind
	// TraceWriter is the JSONL trace sink: deterministic field order and
	// float formatting, so traces of bit-identical runs diff clean.
	TraceWriter = obs.JSONL
	// TraceSummary is the structural digest of a trace (per-solve
	// convergence series, restart leaderboard, winner).
	TraceSummary = obs.Summary
	// Registry is a zero-dependency metrics registry (counters, gauges,
	// histograms) with Prometheus text exposition and an expvar bridge.
	Registry = obs.Registry
	// Manifest is the reproducibility record of one run.
	Manifest = obs.Manifest
)

// Observe returns a deterministic JSONL trace sink writing to w. Plug it
// into Options.Tracer, and call Close when done to flush (solvers surface
// the sink's first write error on their own error path as well):
//
//	var buf bytes.Buffer
//	sink := gpp.Observe(&buf)
//	res, err := gpp.Partition(c, 5, gpp.Options{Tracer: sink})
//	err = sink.Close()
func Observe(w io.Writer) *TraceWriter { return obs.NewJSONL(w) }

// ReadTrace decodes a JSONL trace (as written by Observe or the CLIs'
// -trace flag) back into events.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadTrace(r) }

// SummarizeTrace reconstructs per-solve traces from a flat event stream;
// its WriteText renders the human-readable digest `gpp-inspect trace`
// prints.
func SummarizeTrace(events []TraceEvent) *TraceSummary { return obs.Summarize(events) }

// DefaultRegistry is the process-wide metrics registry the solver stack
// instruments (solve counts, iteration totals, pool utilization). The CLIs
// serve it over HTTP via -metrics-addr; embedders can render it with
// WriteProm or bridge it to expvar with PublishExpvar.
func DefaultRegistry() *Registry { return obs.Default() }
