package gpp

import (
	"bytes"
	"strings"
	"testing"
)

// TestObserveFacade traces a small solve end to end through the public
// facade: Observe sink → Partition → ReadTrace → SummarizeTrace.
func TestObserveFacade(t *testing.T) {
	c, err := Benchmark("KSA4")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := Observe(&buf)
	res, err := Partition(c, 5, Options{Seed: 1, Refine: true, Tracer: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeTrace(events)
	if len(sum.Solves) != 1 {
		t.Fatalf("summarized %d solves, want 1", len(sum.Solves))
	}
	st := sum.Solves[0]
	if st.Done == nil || st.Done.Iters != res.Iters {
		t.Errorf("trace iters disagree with result: trace=%+v result=%d", st.Done, res.Iters)
	}
	if len(st.Iters) == 0 || st.Snap == nil {
		t.Errorf("trace missing iteration or snap events (%d iters)", len(st.Iters))
	}

	var text strings.Builder
	if err := sum.WriteText(&text, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "solve seed=1") {
		t.Errorf("summary text missing solve header:\n%s", text.String())
	}
}

func TestDefaultRegistryCounts(t *testing.T) {
	reg := DefaultRegistry()
	before := reg.Counter("gpp_solver_solves_total").Value()
	c, err := Benchmark("KSA4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(c, 5, Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if after := reg.Counter("gpp_solver_solves_total").Value(); after != before+1 {
		t.Errorf("solves counter went %d → %d, want +1", before, after)
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "gpp_solver_iters_per_solve_bucket") {
		t.Error("exposition missing solver histogram")
	}
}
