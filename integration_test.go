package gpp

// End-to-end pipeline integration: generate → partition → verify → plan →
// place → export → re-import → re-verify, across several benchmark
// circuits and plane counts. These tests tie every subsystem together the
// way cmd/gpp-partition does and assert cross-module consistency rather
// than per-module behavior.

import (
	"bytes"
	"math"
	"testing"

	"gpp/internal/verilog"
)

func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline integration in -short mode")
	}
	cases := []struct {
		name string
		k    int
	}{
		{"KSA4", 4},
		{"KSA8", 5},
		{"MULT4", 3},
		{"ID4", 5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, err := Benchmark(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Partition(c, tc.k, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			// 1. Independent verification.
			if issues := Verify(c, res, 0); len(issues) != 0 {
				t.Fatalf("verification: %v", issues)
			}
			// 2. Recycling plan + its verification.
			plan, err := PlanRecycling(c, res)
			if err != nil {
				t.Fatal(err)
			}
			if issues := VerifyPlan(c, res, plan); len(issues) != 0 {
				t.Fatalf("plan verification: %v", issues)
			}
			// Plan supply must cover the metric B_max plus overhead.
			if plan.SupplyCurrent < res.Metrics.BMax-1e-9 {
				t.Errorf("supply %.3f below logic B_max %.3f", plan.SupplyCurrent, res.Metrics.BMax)
			}
			// 3. Placement with geometric validation.
			layout, err := Place(c, res)
			if err != nil {
				t.Fatal(err)
			}
			if err := layout.Validate(); err != nil {
				t.Fatal(err)
			}
			if layout.OverlapCount() != 0 {
				t.Error("overlapping cells")
			}
			// Coupler slots match the metric crossing pairs.
			_, pairs := res.Metrics.CrossingCount()
			if len(layout.Slots) != pairs {
				t.Errorf("%d coupler slots, metrics say %d pairs", len(layout.Slots), pairs)
			}
			// 4. Placed-DEF round trip recovers the exact partition.
			var buf bytes.Buffer
			if err := WritePlacedDEF(&buf, c, layout); err != nil {
				t.Fatal(err)
			}
			labels, k, err := ReadPlanesDEF(bytes.NewReader(buf.Bytes()), c)
			if err != nil {
				t.Fatal(err)
			}
			if k != tc.k {
				t.Fatalf("recovered K = %d", k)
			}
			m2, err := Evaluate(c, k, labels)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(m2.BMax-res.Metrics.BMax) > 1e-9 {
				t.Error("metrics changed through DEF round trip")
			}
			// 5. Timing and power analyses run and are self-consistent.
			pen, err := TimingImpact(c, res)
			if err != nil {
				t.Fatal(err)
			}
			if pen.FreqRatio <= 0 || pen.FreqRatio > 1 {
				t.Errorf("frequency ratio %g", pen.FreqRatio)
			}
			pw, err := PowerImpact(c, plan)
			if err != nil {
				t.Fatal(err)
			}
			wantRatio := pw.CurrentReduction * pw.CurrentReduction
			if math.Abs(pw.LeadLossReduction-wantRatio)/wantRatio > 1e-9 {
				t.Error("lead loss not quadratic in current reduction")
			}
			// 6. Verilog export is structurally sane.
			var vbuf bytes.Buffer
			if err := verilog.Write(&vbuf, c, verilog.Options{Labels: res.Labels}); err != nil {
				t.Fatal(err)
			}
			if vbuf.Len() == 0 {
				t.Error("empty verilog output")
			}
		})
	}
}

func TestPipelineBalancedUnderLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline integration in -short mode")
	}
	// Balanced rounding must allow meeting a supply limit that argmax
	// snapping misses at the same K: pick the bound between the two.
	c, err := Benchmark("KSA16")
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	arg, err := Partition(c, k, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bal, err := PartitionBalanced(c, k, Options{Seed: 1}, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Metrics.BMax >= arg.Metrics.BMax {
		t.Skipf("balanced (%.2f) did not tighten argmax (%.2f) on this instance",
			bal.Metrics.BMax, arg.Metrics.BMax)
	}
	limit := (bal.Metrics.BMax + arg.Metrics.BMax) / 2
	if issues := Verify(c, bal, limit); len(issues) != 0 {
		t.Errorf("balanced result misses the limit it should meet: %v", issues)
	}
	if issues := Verify(c, arg, limit); len(issues) == 0 {
		t.Error("argmax result unexpectedly meets the tighter limit")
	}
}

func TestPipelineDeterministicAcrossRuns(t *testing.T) {
	c, err := Benchmark("KSA4")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Partition(c, 5, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Benchmark("KSA4") // regenerate from scratch
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(c2, 5, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("pipeline not reproducible end to end")
		}
	}
}
