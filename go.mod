module gpp

go 1.22
