# Build / test entry points. `make check` is the tier-1 gate (see README):
# vet plus the full test suite under the race detector — the parallel
# kernels and the restart portfolio must stay race-clean.

GO ?= go

.PHONY: build test check race bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Run the solver-options fuzzer for 30s (regular `make test` already runs
# its seed corpus as a unit test).
fuzz:
	$(GO) test -run xxx -fuzz FuzzSolveOptions -fuzztime 30s ./internal/partition
