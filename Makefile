# Build / test entry points. `make check` is the tier-1 gate (see README):
# gofmt + vet plus the fast test suite under the race detector — the
# parallel kernels and the restart portfolio must stay race-clean. The
# large-synthetic and e2e V-cycle tests hide behind -short and run in the
# `test-slow` tier (its own CI job), keeping check's wall time flat.

GO ?= go

.PHONY: build test test-slow check fmt-check race bench bench-json bench-smoke obs-bench obs-smoke serve-smoke cluster-smoke sweep-smoke fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Slow tier: the full suite with nothing skipped — the 100k-gate V-cycle
# determinism sweep and the million-gate e2e included — under the race
# detector. Separate CI job; run locally before perf-sensitive changes.
test-slow:
	$(GO) test -race -count=1 -timeout 45m ./...

# Formatting gate: gofmt -l prints offending files and stays silent when
# clean; the shell check turns any output into a failure.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

check:
	$(MAKE) fmt-check
	$(GO) vet ./...
	$(GO) test -short -race ./...
	$(GO) test -run xxx -bench 'SolveTrace|JSONLEmit' -benchtime 1x ./internal/partition ./internal/obs
	$(MAKE) bench-smoke
	$(MAKE) obs-smoke
	$(MAKE) serve-smoke
	$(MAKE) sweep-smoke
	$(MAKE) cluster-smoke

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Solver hot-path perf trajectory: full measurement run via the gpp-bench
# -perf harness (now including the checkpoint-interval sweep). Label the
# series after the commit under measurement and append so before/after
# history accumulates, e.g.:
#   make bench-json PERF_LABEL=pr5-ckpt PERF_OUT=BENCH_PR5.json
PERF_LABEL ?= head
PERF_OUT ?= BENCH_PR10.json
# Measurement robustness on shared hosts: each cell is measured in
# PERF_REPEAT independent windows of PERF_BENCHTIME each and the median
# window is recorded, so a multi-second hypervisor stall blanketing one
# window cannot distort a cell. Raise either knob when successive runs of
# the same commit still disagree.
PERF_BENCHTIME ?= 1s
PERF_REPEAT ?= 3
bench-json:
	$(GO) run ./cmd/gpp-bench -perf -perf-label $(PERF_LABEL) -perf-out $(PERF_OUT) -perf-append \
		-perf-benchtime $(PERF_BENCHTIME) -perf-repeat $(PERF_REPEAT)

# Liveness check for the perf harness itself (one tiny circuit, one op per
# cell, output discarded — seconds, not minutes, so it rides in `make
# check`) plus the perf-trajectory regression gate: `gpp-inspect bench`
# digests the committed BENCH_*.json series and fails when the newest one
# regressed >10% over the recent baseline. Deterministic — it reads
# committed measurements, it does not re-measure.
bench-smoke:
	$(GO) run ./cmd/gpp-bench -perf -perf-smoke -perf-out=- > /dev/null
	$(GO) run ./cmd/gpp-inspect bench > /dev/null

# Telemetry overhead benchmarks: SolveTraceOff vs SolveTraceNop bounds the
# cost of the instrumentation hooks with tracing off (must stay <2% and
# alloc-free — TestSolveIterationPathAllocFree guards the alloc half);
# SolveTraceJSONL and JSONLEmit price the enabled path.
obs-bench:
	$(GO) test -run xxx -bench 'SolveTrace|JSONLEmit' -benchmem ./internal/partition ./internal/obs

# End-to-end observability smoke (DESIGN.md §13): boots a real gpp-serve
# with tracing and an SLO configured, runs one job, and asserts the span
# profile, /v1/debug/ops (JSON and text waterfall), the SLO metrics and
# /healthz are all well-formed.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestObsSmoke$$' -v ./cmd/gpp-serve

# Daemon drain proof (DESIGN.md §9): one fresh run of the serve smoke —
# 32 concurrent mixed cached/uncached submissions against a live daemon,
# a real SIGTERM mid-flight, then an audit that every accepted job
# drained to a complete, byte-consistent response. Race detector on.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke$$' -v ./internal/serve

# Batch-sweep proof (DESIGN.md §16): a three-regime portfolio submitted as
# one POST /v1/sweeps against a live server — ranked results, per-cell
# cost breakdowns, individually cache-hittable cells — plus a gpp-sweep
# CLI liveness run through the in-process facade. Race detector on.
sweep-smoke:
	$(GO) test -race -count=1 -run 'TestSweepThreeRegimes$$' -v ./internal/serve
	$(GO) run ./cmd/gpp-sweep -circuit KSA4 -ks 3,4 > /dev/null

# Three-node cluster proof (DESIGN.md §14): real gpp-serve subprocesses
# with static membership — consistent-hash routing, cross-node cache
# reads, a SIGKILL mid-queue with journal replay plus work stealing, and
# a clean SIGTERM drain. Node logs land in CLUSTER_SMOKE_LOG_DIR (CI
# uploads them on failure).
CLUSTER_SMOKE_LOG_DIR ?=
cluster-smoke:
	CLUSTER_SMOKE_LOG_DIR=$(CLUSTER_SMOKE_LOG_DIR) \
		$(GO) test -race -count=1 -run 'TestClusterSmoke$$' -v ./cmd/gpp-serve

# Run the fuzzers for 30s each: solver-options validation and the
# incremental-vs-full-sweep bitwise parity check (regular `make test`
# already runs both seed corpora as unit tests).
fuzz:
	$(GO) test -run xxx -fuzz FuzzSolveOptions -fuzztime 30s ./internal/partition
	$(GO) test -run xxx -fuzz FuzzIncrementalParity -fuzztime 30s ./internal/partition
