package gpp

// Benchmark harness: one benchmark per table/figure of the paper plus the
// repository's ablations (see DESIGN.md §4). Each table benchmark runs the
// full experiment pipeline and reports the paper's headline quantities as
// custom benchmark metrics, so `go test -bench` regenerates the evaluation:
//
//	BenchmarkTableI        — Table I  (suite, K = 5)
//	BenchmarkTableII       — Table II (KSA4, K = 5..10)
//	BenchmarkTableIII      — Table III (100 mA supply limit)
//	BenchmarkBiasStack     — Fig. 1 analog (recycling plan construction)
//	BenchmarkAblation*     — gradient modes, baselines
//	BenchmarkConvergence   — cost-trace generation
//	BenchmarkSolver*       — raw Algorithm-1 throughput per circuit
//	BenchmarkCostGradient  — one cost+gradient evaluation (inner loop)
//
// Absolute timings depend on the host; the custom metrics (d≤1 %, I_comp %,
// …) are the reproduction targets and should match EXPERIMENTS.md.

import (
	"bytes"
	"context"
	"testing"

	"gpp/internal/def"
	"gpp/internal/eco"
	"gpp/internal/experiments"
	"gpp/internal/gen"
	"gpp/internal/multilevel"
	"gpp/internal/partition"
	"gpp/internal/place"
	"gpp/internal/recycle"
	"gpp/internal/timing"
)

func benchConfig() experiments.Config {
	cfg := experiments.Config{}
	cfg.Solver.Seed = 1
	return cfg
}

// BenchmarkTableI regenerates Table I: the 13-circuit suite at K = 5.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var d1, d2, ic, af float64
		for _, r := range rows {
			d1 += r.DLE1Pct
			d2 += r.DLE2Pct
			ic += r.ICompPct
			af += r.AFSPct
		}
		n := float64(len(rows))
		b.ReportMetric(d1/n, "avg-d≤1-%")
		b.ReportMetric(d2/n, "avg-d≤2-%")
		b.ReportMetric(ic/n, "avg-Icomp-%")
		b.ReportMetric(af/n, "avg-AFS-%")
	}
}

// BenchmarkTableII regenerates Table II: KSA4 swept over K = 5..10.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].DLE1Pct, "K5-d≤1-%")
		b.ReportMetric(rows[len(rows)-1].DLE1Pct, "K10-d≤1-%")
		b.ReportMetric(rows[len(rows)-1].ICompPct, "K10-Icomp-%")
	}
}

// BenchmarkTableIII regenerates Table III: the 100 mA supply-limit search
// over the suite (the heaviest experiment: every circuit is partitioned at
// several K values).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIII(benchConfig(), 100)
		if err != nil {
			b.Fatal(err)
		}
		gap := 0
		var dhalf float64
		for _, r := range rows {
			gap += r.KRes - r.KLB
			dhalf += r.DHalfPct
		}
		b.ReportMetric(float64(gap), "ΣKres-KLB")
		b.ReportMetric(dhalf/float64(len(rows)), "avg-d≤K/2-%")
	}
}

// BenchmarkBiasStack exercises the Fig.-1 substrate: building and
// validating the full current-recycling plan (coupler chains, dummy
// structures, serial stack bookkeeping) for a partitioned KSA16.
func BenchmarkBiasStack(b *testing.B) {
	c, err := gen.Benchmark("KSA16", nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := recycle.BuildPlan(c, p, res.Labels, recycle.PlanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := plan.Validate(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(plan.SupplyCurrent, "supply-mA")
		b.ReportMetric(plan.SavedCurrent(), "saved-mA")
	}
}

// BenchmarkAblationGradient compares exact vs paper-literal gradients
// (DESIGN.md ablation A).
func BenchmarkAblationGradient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationGradients("KSA8", 5, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].DLE1Pct, "exact-d≤1-%")
		b.ReportMetric(rows[1].DLE1Pct, "paper-d≤1-%")
	}
}

// BenchmarkAblationBaselines compares the algorithm against the baseline
// partitioners (DESIGN.md ablation B).
func BenchmarkAblationBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBaselines("KSA8", 5, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Method {
			case "gradient-descent":
				b.ReportMetric(r.Cost, "gd-cost")
			case "random":
				b.ReportMetric(r.Cost, "random-cost")
			case "anneal":
				b.ReportMetric(r.Cost, "anneal-cost")
			}
		}
	}
}

// BenchmarkConvergence measures a traced Algorithm-1 run (the convergence
// curve discussed with the margin criterion).
func BenchmarkConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace, err := experiments.Convergence("KSA8", 5, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(trace)), "iterations")
	}
}

// benchmarkSolver times raw Algorithm-1 runs on one suite circuit.
func benchmarkSolver(b *testing.B, name string, k int) {
	c, err := gen.Benchmark(name, nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Solve(partition.Options{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		m, err := recycle.Evaluate(p, res.Labels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.DistLEPct(1), "d≤1-%")
	}
}

func BenchmarkSolverKSA4K5(b *testing.B)   { benchmarkSolver(b, "KSA4", 5) }
func BenchmarkSolverKSA32K5(b *testing.B)  { benchmarkSolver(b, "KSA32", 5) }
func BenchmarkSolverC3540K5(b *testing.B)  { benchmarkSolver(b, "C3540", 5) }
func BenchmarkSolverKSA4K10(b *testing.B)  { benchmarkSolver(b, "KSA4", 10) }
func BenchmarkSolverC3540K32(b *testing.B) { benchmarkSolver(b, "C3540", 32) }

// BenchmarkCostGradient measures one cost + gradient evaluation — the
// solver's inner loop — on a mid-size circuit.
func BenchmarkCostGradient(b *testing.B) {
	c, err := gen.Benchmark("C432", nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		b.Fatal(err)
	}
	w := p.NewW()
	for i := range w {
		w[i] = 1.0 / float64(p.K)
	}
	grad := make([]float64, p.G*p.K)
	coeffs := partition.DefaultCoeffs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Cost(w, coeffs)
		p.Gradient(w, coeffs, partition.GradientExact, grad)
	}
}

// parallelKernelProblem builds the ≥5k-gate synthetic instance the
// serial-vs-parallel kernel benchmarks share. Big enough that the cost and
// gradient evaluations span many shards (see DESIGN.md §7), so the worker
// pool has real work to spread.
func parallelKernelProblem(b *testing.B) *partition.Problem {
	b.Helper()
	c, err := gen.Synthetic(gen.SyntheticSpec{Name: "par6000", Gates: 6000, Conns: 8400, Seed: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchmarkCostGradientWorkers measures one CostParallel + GradientParallel
// evaluation on the 6000-gate synthetic at a fixed worker count. Workers = 1
// is the serial baseline; the results are bit-identical at every count, so
// the only difference is wall-clock time.
func benchmarkCostGradientWorkers(b *testing.B, workers int) {
	p := parallelKernelProblem(b)
	w := p.NewW()
	for i := range w {
		w[i] = 1.0 / float64(p.K)
	}
	grad := make([]float64, p.G*p.K)
	coeffs := partition.DefaultCoeffs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.CostParallel(w, coeffs, workers)
		p.GradientParallel(w, coeffs, partition.GradientExact, grad, workers)
	}
}

func BenchmarkCostGradient6000W1(b *testing.B) { benchmarkCostGradientWorkers(b, 1) }
func BenchmarkCostGradient6000W4(b *testing.B) { benchmarkCostGradientWorkers(b, 4) }
func BenchmarkCostGradient6000W8(b *testing.B) { benchmarkCostGradientWorkers(b, 8) }

// benchmarkSolveWorkers measures a full Solve on the 6000-gate synthetic at
// a fixed worker count (identical Labels/Iters at every count).
func benchmarkSolveWorkers(b *testing.B, workers int) {
	p := parallelKernelProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 40, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Iters), "iters")
	}
}

func BenchmarkSolve6000W1(b *testing.B) { benchmarkSolveWorkers(b, 1) }
func BenchmarkSolve6000W8(b *testing.B) { benchmarkSolveWorkers(b, 8) }

// benchmarkPortfolioWorkers measures an 8-seed restart race on C3540 at a
// fixed portfolio concurrency (serial kernels inside each restart — the
// configuration the CLI uses, since restarts are embarrassingly parallel).
func benchmarkPortfolioWorkers(b *testing.B, workers int) {
	c, err := gen.Benchmark("C3540", nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf, err := p.SolvePortfolio(context.Background(), partition.Options{Seed: 1, Workers: 1},
			partition.PortfolioOptions{Restarts: 8, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pf.Best.Discrete.Total, "best-cost")
	}
}

func BenchmarkPortfolioC3540W1(b *testing.B) { benchmarkPortfolioWorkers(b, 1) }
func BenchmarkPortfolioC3540W8(b *testing.B) { benchmarkPortfolioWorkers(b, 8) }

// BenchmarkRefine measures the greedy move refinement pass.
func BenchmarkRefine(b *testing.B) {
	c, err := gen.Benchmark("KSA16", nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		b.Fatal(err)
	}
	base, err := p.Solve(partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	coeffs := partition.DefaultCoeffs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labels := append([]int(nil), base.Labels...)
		p.Refine(labels, coeffs, 8)
	}
}

// BenchmarkSuiteGeneration measures generating + SFQ-mapping the full
// benchmark suite (the substrate pipeline: generators → mapper).
func BenchmarkSuiteGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite, err := gen.Suite(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(suite) != 13 {
			b.Fatal("suite incomplete")
		}
	}
}

// BenchmarkFrequencyPenalty regenerates the extended frequency-penalty
// experiment: KSA16 partitioned at several K, timing model before/after.
func BenchmarkFrequencyPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FrequencyPenalty("KSA16", []int{2, 5, 8}, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].FreqRatio, "K5-freq-ratio")
	}
}

// BenchmarkPowerEconomics regenerates the supply-economics experiment.
func BenchmarkPowerEconomics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PowerComparison([]string{"KSA16", "KSA32"}, 5, 100, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].CurrentReduction, "KSA16-I-reduction")
		b.ReportMetric(rows[0].LeadLossReduction, "KSA16-leadloss-reduction")
	}
}

// BenchmarkAblationRounding regenerates the argmax-vs-balanced rounding
// comparison.
func BenchmarkAblationRounding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationRounding("KSA16", 5, 0.05, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "balanced" {
				b.ReportMetric(r.ICompPct, "balanced-Icomp-%")
			}
		}
	}
}

// BenchmarkSeedSensitivity regenerates the robustness experiment.
func BenchmarkSeedSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := experiments.SeedSensitivity("KSA8", 5, 5, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.StdDLE1, "d≤1-stddev")
	}
}

// BenchmarkPlacement measures the plane-banded placer on a partitioned
// KSA32.
func BenchmarkPlacement(b *testing.B) {
	c, err := gen.Benchmark("KSA32", nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := place.Build(c, 5, res.Labels, place.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := pl.Validate(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pl.HPWL, "HPWL-mm")
	}
}

// BenchmarkTimingAnalysis measures one full stage-delay analysis of the
// largest suite circuit.
func BenchmarkTimingAnalysis(b *testing.B) {
	c, err := gen.Benchmark("C3540", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := timing.Analyze(c, timing.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(an.MaxFreqGHz, "fmax-GHz")
	}
}

// BenchmarkDEFRoundTrip measures writing + parsing a mid-size design.
func BenchmarkDEFRoundTrip(b *testing.B) {
	c, err := gen.Benchmark("KSA16", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := def.Write(&buf, c, nil); err != nil {
			b.Fatal(err)
		}
		d, err := def.Parse(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := def.ToCircuit(d, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultilevel measures the multilevel extension against the same
// instance the flat solver benches use.
func BenchmarkMultilevel(b *testing.B) {
	c, err := gen.Benchmark("C3540", nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := multilevel.Partition(p, multilevel.Options{})
		if err != nil {
			b.Fatal(err)
		}
		m, err := recycle.Evaluate(p, res.Labels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.DistLEPct(1), "d≤1-%")
		b.ReportMetric(float64(res.CoarsestSize), "coarsest-G")
	}
}

// BenchmarkAdderTopologies regenerates the topology-vs-partitionability
// experiment (ripple / Brent-Kung / Kogge-Stone / Sklansky 16-bit adders
// at K = 5).
func BenchmarkAdderTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AdderTopologies(16, 5, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Topology == "ripple" {
				b.ReportMetric(r.DLE1Pct, "ripple-d≤1-%")
			}
			if r.Topology == "sklansky" {
				b.ReportMetric(r.DLE1Pct, "sklansky-d≤1-%")
			}
		}
	}
}

// BenchmarkKSweep regenerates the generalized Table-II scaling curves
// (three circuits × four K values).
func BenchmarkKSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.KSweep([]string{"KSA8", "MULT4", "ID4"}, []int{3, 5, 7, 9}, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(pts)), "points")
	}
}

// BenchmarkECOExtend measures incremental repartitioning of a 30-gate
// edit against a partitioned KSA16.
func BenchmarkECOExtend(b *testing.B) {
	c, err := gen.Benchmark("KSA16", nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	grown := c.Clone()
	lib := DefaultLibrary()
	dff, _ := lib.ByName("DFFT")
	prev := GateID(0)
	for i := 0; i < 30; i++ {
		id := GateID(len(grown.Gates))
		grown.Gates = append(grown.Gates, Gate{ID: id, Name: "eco" + string(rune('a'+i%26)) + string(rune('0'+i/26)), Cell: "DFFT", Bias: dff.Bias, Area: dff.Area()})
		grown.Edges = append(grown.Edges, Edge{From: prev, To: id})
		prev = id
	}
	p2, err := partition.FromCircuit(grown, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eco.Extend(p2, res.Labels, eco.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Adjusted), "old-gates-moved")
	}
}

// BenchmarkCongestion regenerates the boundary-channel congestion
// experiment (left-edge routed tracks vs K).
func BenchmarkCongestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Congestion("KSA16", []int{2, 5, 8}, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].MaxTracks), "K5-max-tracks")
		b.ReportMetric(rows[1].TotalWireMM, "K5-channel-wire-mm")
	}
}
