// Command gpp-eco incrementally repartitions a grown design: given the
// grown netlist (DEF), the original partition (assignment TSV covering the
// original gate prefix), and K, it places the new cells without disturbing
// the existing assignment and writes the extended assignment.
//
// Usage:
//
//	gpp-eco -def grown.def -base old.tsv -k 5 -o new.tsv
//	gpp-eco -def grown.def -lef cells.lef -base old.tsv -k 5 -o new.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"gpp/internal/assignio"
	"gpp/internal/cellib"
	"gpp/internal/def"
	"gpp/internal/eco"
	"gpp/internal/lef"
	"gpp/internal/netlist"
	"gpp/internal/partition"
	"gpp/internal/recycle"
	"gpp/internal/verif"
)

func main() {
	defPath := flag.String("def", "", "grown DEF netlist (original gates first, new gates appended)")
	lefPath := flag.String("lef", "", "LEF cell library (default: built-in)")
	basePath := flag.String("base", "", "original assignment TSV (covers the original gate prefix)")
	k := flag.Int("k", 5, "number of ground planes")
	out := flag.String("o", "-", "output assignment TSV ('-' for stdout)")
	noCleanup := flag.Bool("no-cleanup", false, "skip the local refinement around the edit")
	flag.Parse()

	if *defPath == "" || *basePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	c, err := loadCircuit(*defPath, *lefPath)
	if err != nil {
		fatal(err)
	}
	base, err := readBase(*basePath, c)
	if err != nil {
		fatal(err)
	}
	p, err := partition.FromCircuit(c, *k)
	if err != nil {
		fatal(err)
	}
	opts := eco.Options{}
	if *noCleanup {
		opts = opts.WithoutCleanup()
	}
	res, err := eco.Extend(p, base, opts)
	if err != nil {
		fatal(err)
	}
	if issues := verif.Partition(c, *k, res.Labels, 0); len(issues) > 0 {
		for _, is := range issues {
			fmt.Fprintln(os.Stderr, "VERIFY:", is)
		}
		fatal(fmt.Errorf("extended partition failed verification"))
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "extended %s: +%d gates inserted, %d old gates adjusted; d≤1 %.1f%%, I_comp %.2f%%\n",
		c.Name, res.Inserted, res.Adjusted, m.DistLEPct(1), m.ICompPct)

	var w *os.File = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := assignio.Write(w, c, res.Labels); err != nil {
		fatal(err)
	}
}

// readBase reads the original assignment: it may cover only a prefix of
// the grown circuit's gates, so assignio.Read's completeness check is
// replaced with prefix semantics here.
func readBase(path string, grown *netlist.Circuit) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Parse leniently: collect per-gate assignments, then require a dense
	// prefix.
	labels := make([]int, grown.NumGates())
	for i := range labels {
		labels[i] = -1
	}
	tmp, _, err := assignio.ReadPartial(f, grown)
	if err != nil {
		return nil, err
	}
	copy(labels, tmp)
	n := 0
	for n < len(labels) && labels[n] >= 0 {
		n++
	}
	for i := n; i < len(labels); i++ {
		if labels[i] >= 0 {
			return nil, fmt.Errorf("gpp-eco: assignment covers gate %d but not gate %d — new gates must be appended after all original gates", i, n)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("gpp-eco: assignment covers no gates of the grown design")
	}
	return labels[:n], nil
}

func loadCircuit(defPath, lefPath string) (*netlist.Circuit, error) {
	lib := cellib.Default()
	if lefPath != "" {
		f, err := os.Open(lefPath)
		if err != nil {
			return nil, err
		}
		macros, err := lef.Parse(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		lib, err = lef.ToLibrary("user", macros)
		if err != nil {
			return nil, err
		}
	}
	f, err := os.Open(defPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := def.Parse(f)
	if err != nil {
		return nil, err
	}
	return def.ToCircuit(d, lib)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpp-eco:", err)
	os.Exit(1)
}
