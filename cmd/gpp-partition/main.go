// Command gpp-partition partitions an SFQ netlist into K ground planes for
// current recycling and reports the paper's quality metrics plus the
// physical recycling plan.
//
// The input is either a DEF file (with cells resolved via -lef, or the
// built-in library) or a generated benchmark (-circuit).
//
// Usage:
//
//	gpp-partition -circuit KSA8 -k 5
//	gpp-partition -def design.def -lef cells.lef -k 8 -assign out.tsv
//	gpp-partition -circuit C432 -limit 100          # search K for a 100 mA supply
//	gpp-partition -circuit KSA16 -k 5 -balanced 0.05 -refine
//	gpp-partition -circuit KSA16 -k 5 -placed-def out.def   # plane REGIONS/GROUPS
//	gpp-partition -circuit KSA32 -k 5 -restarts 16 -seeds   # concurrent restart portfolio
//	gpp-partition -circuit C3540 -k 8 -workers 8            # parallel kernels, bit-identical to -workers 1
//	gpp-partition -circuit KSA8 -k 5 -trace run.jsonl -manifest run.json  # telemetry artifacts
//	gpp-partition -circuit C3540 -k 8 -checkpoint run.snap  # snapshot every 100 iterations
//	gpp-partition -circuit C3540 -k 8 -resume run.snap      # continue; bitwise = uninterrupted
//	gpp-partition -circuit par1000000 -k 5 -multilevel      # million-gate V-cycle in seconds
//	gpp-partition -circuit par100000 -k 5 -multilevel -coarsest 500 -checkpoint run.vsnap
//	gpp-partition -circuit C3540 -k 8 -metrics-addr :8080   # /metrics, /debug/vars, /debug/pprof
//	gpp-partition -circuit KSA32 -k 5 -terms xesfq          # regime term from the registry
//	gpp-partition -circuit KSA32 -k 5 -terms current_limit:2:50 -term-weights f2=0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpp/internal/assignio"
	"gpp/internal/cellib"
	"gpp/internal/def"
	"gpp/internal/experiments"
	"gpp/internal/gen"
	"gpp/internal/lef"
	"gpp/internal/multilevel"
	"gpp/internal/netlist"
	"gpp/internal/obs/obscli"
	"gpp/internal/partition"
	"gpp/internal/place"
	"gpp/internal/recycle"
	"gpp/internal/store"
	"gpp/internal/svg"
	"gpp/internal/terms"
	"gpp/internal/timing"
	"gpp/internal/verif"
)

func main() {
	defPath := flag.String("def", "", "input DEF netlist")
	lefPath := flag.String("lef", "", "LEF cell library for -def (default: built-in library)")
	circuit := flag.String("circuit", "", "generate a benchmark instead of reading DEF")
	k := flag.Int("k", 5, "number of ground planes")
	limit := flag.Float64("limit", 0, "if > 0, search the smallest K whose B_max fits this supply (mA); overrides -k")
	seed := flag.Int64("seed", 1, "solver random seed")
	refine := flag.Bool("refine", false, "run greedy move refinement after gradient descent")
	restarts := flag.Int("restarts", 1, "random restarts raced concurrently; the best discrete-cost result is kept")
	workers := flag.Int("workers", 0, "worker goroutines (0 = one per CPU, 1 = serial); results are identical for every count")
	showSeeds := flag.Bool("seeds", false, "with -restarts > 1, print the per-seed portfolio summary")
	balanced := flag.Float64("balanced", -1, "if ≥ 0, use capacity-aware rounding with this bias slack (e.g. 0.05)")
	ml := flag.Bool("multilevel", false, "partition with the multilevel V-cycle (coarsen → solve coarsest → refine per level); the scale path for ≳10⁵-gate instances")
	coarsest := flag.Int("coarsest", 0, "with -multilevel, stop coarsening at this many supervertices (0 = default, max(200, 10K))")
	levels := flag.Int("levels", 0, "with -multilevel, cap the hierarchy depth including the original level (0 = default, 32)")
	assign := flag.String("assign", "", "write gate→plane assignment TSV to this path")
	placedDEF := flag.String("placed-def", "", "write partitioned+placed DEF (plane REGIONS/GROUPS) to this path")
	layoutSVG := flag.String("layout-svg", "", "render the plane-banded layout as SVG to this path")
	stackSVG := flag.String("stack-svg", "", "render the serial bias stack (Fig. 1) as SVG to this path")
	checkpoint := flag.String("checkpoint", "", "write a solver snapshot to this path during the solve (atomic replace; restart with -resume)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "iterations between -checkpoint snapshots (0 = solver default, 100)")
	resume := flag.String("resume", "", "resume the solve from a -checkpoint snapshot; the result is bitwise identical to an uninterrupted run")
	termList := flag.String("terms", "", "comma-separated cost terms name[:weight[:param]] from the registry (e.g. xesfq,current_limit:2:50)")
	termWeights := flag.String("term-weights", "", "comma-separated name=weight overrides for registered terms (e.g. f2=0.5,timing_critical=2)")
	listTerms := flag.Bool("list-terms", false, "print the registered term names and exit")
	plan := flag.Bool("plan", true, "print the current-recycling plan summary")
	showTiming := flag.Bool("timing", false, "print the frequency-penalty analysis")
	verify := flag.Bool("verify", true, "independently verify the result before reporting")
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	if *listTerms {
		for _, name := range terms.Names() {
			fmt.Println(name)
		}
		return
	}

	sess, err := obsFlags.Start("gpp-partition")
	if err != nil {
		fatal(err)
	}
	cleanup = sess.Close

	c, lib, err := loadCircuit(*defPath, *lefPath, *circuit)
	if err != nil {
		fatal(err)
	}
	sess.Meta("circuit", map[string]any{
		"name": c.Name, "gates": c.NumGates(), "edges": c.NumEdges(),
	})
	sess.Meta("seed", *seed)

	opts := partition.Options{Seed: *seed, Refine: *refine, Workers: *workers, Tracer: sess.Tracer, Span: sess.Span}
	opts.Terms, err = parseTermSpecs(*termList, *termWeights)
	if err != nil {
		fatal(err)
	}
	if *checkpoint != "" || *resume != "" {
		// Snapshots capture exactly one descent (or one V-cycle), so the
		// multi-solve modes cannot use them: a portfolio interleaves restarts
		// and a K search runs one solve per candidate K.
		if *restarts > 1 || *limit > 0 {
			fatal(fmt.Errorf("-checkpoint/-resume cover a single solve; drop -restarts/-limit"))
		}
	}
	if *ml && (*balanced >= 0 || *restarts > 1 || *limit > 0) {
		fatal(fmt.Errorf("-multilevel is a single V-cycle solve; drop -balanced/-restarts/-limit"))
	}
	// In multilevel mode the snapshot flags use the V-cycle codec and hang
	// off the multilevel options instead (see the solve switch below).
	if *checkpoint != "" && !*ml {
		path := *checkpoint
		opts.CheckpointEvery = *checkpointEvery
		opts.Checkpoint = func(s *partition.Snapshot) error {
			return store.WriteFileAtomic(path, partition.EncodeSnapshot(s), 0o644)
		}
	}
	if *resume != "" && !*ml {
		raw, err := store.ReadFileChecked(*resume)
		if err != nil {
			fatal(err)
		}
		snap, err := partition.DecodeSnapshot(raw)
		if err != nil {
			fatal(err)
		}
		opts.Resume = snap
		fmt.Fprintf(os.Stderr, "gpp-partition: resuming from %s at iteration %d\n", *resume, snap.Iter)
	}
	// The manifest records the *normalized* options fingerprint, so two
	// spellings of the same solve (say -seed 1 vs the default) are
	// recognizably one configuration across runs — the same identity the
	// serve daemon's result cache keys on.
	if fp, err := opts.Fingerprint(); err == nil {
		sess.Meta("options_fingerprint", fp)
	}

	if *limit > 0 {
		row, err := experiments.CurrentLimitSearch(c, *limit, experiments.Config{Solver: opts, Library: lib})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: K_LB=%d K_res=%d (limit %.1f mA)\n", c.Name, row.KLB, row.KRes, *limit)
		*k = row.KRes
	}

	sess.Meta("k", *k)
	sess.Meta("restarts", *restarts)
	sess.Meta("workers", *workers)

	// The term registry builds the problem: with no -terms/-term-weights this
	// is exactly the historical FromCircuit path; named regime terms reshape
	// the compiled problem (and fold f1..f4 weights into the coefficients)
	// before any solve mode runs.
	var p *partition.Problem
	p, opts, err = terms.BuildProblem(c, *k, opts, lib)
	if err != nil {
		fatal(err)
	}
	var res *partition.Result
	switch {
	case *ml:
		mlOpts := multilevel.Options{CoarsestSize: *coarsest, MaxLevels: *levels, Solver: opts}
		if *checkpoint != "" {
			path := *checkpoint
			mlOpts.CheckpointEvery = *checkpointEvery
			mlOpts.Checkpoint = func(s *multilevel.VSnapshot) error {
				return store.WriteFileAtomic(path, multilevel.EncodeVSnapshot(s), 0o644)
			}
		}
		if *resume != "" {
			raw, rerr := store.ReadFileChecked(*resume)
			if rerr != nil {
				fatal(rerr)
			}
			vs, rerr := multilevel.DecodeVSnapshot(raw)
			if rerr != nil {
				fatal(rerr)
			}
			mlOpts.Resume = vs
			fmt.Fprintf(os.Stderr, "gpp-partition: resuming V-cycle from %s at level %d, iteration %d\n",
				*resume, vs.Level, vs.Inner.Iter)
		}
		var mr *multilevel.Result
		mr, err = multilevel.Partition(p, mlOpts)
		if err == nil {
			fmt.Printf("V-cycle: %d levels %v, coarsest solve %d iterations, %d refine moves\n",
				mr.Levels, mr.LevelSizes, mr.CoarseIters, mr.RefineMoves)
			res = &partition.Result{Labels: mr.Labels, Iters: mr.Iters, Converged: mr.Converged, Discrete: mr.Discrete}
		}
	case *balanced >= 0:
		res, err = p.SolveBalanced(opts, *balanced)
	case *restarts > 1:
		// Race the restarts on the worker pool with serial kernels inside
		// each solve — restarts are embarrassingly parallel, so portfolio
		// concurrency is the better use of the same CPU budget.
		solverOpts := opts
		solverOpts.Workers = 1
		var pf *partition.Portfolio
		pf, err = p.SolvePortfolio(context.Background(), solverOpts,
			partition.PortfolioOptions{Restarts: *restarts, Workers: *workers})
		if err == nil {
			res = pf.Best
			if *showSeeds {
				for _, sr := range pf.Seeds {
					marker := " "
					if sr.Seed == pf.BestSeed {
						marker = "*"
					}
					fmt.Printf("%s seed %-4d iters %-5d converged=%-5v discrete cost %.6f\n",
						marker, sr.Seed, sr.Iters, sr.Converged, sr.Discrete.Total)
				}
			}
		}
	default:
		res, err = p.Solve(opts)
	}
	if err != nil {
		fatal(err)
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		fatal(err)
	}

	// The independent verifiers recount bias/area/distances/chains from the
	// raw circuit, which is exactly what regime terms change (xesfq zeroes
	// CSPLIT bias and drops its edges, timing_critical reweights edges).
	// Solved-vs-reported cross-checks would flag the reshaping itself, so
	// they are skipped for reshaped problems.
	reshaped := len(opts.Terms) > 0
	if *verify && reshaped {
		fmt.Fprintln(os.Stderr, "gpp-partition: -verify skipped: regime terms reshape the problem away from the raw circuit")
		*verify = false
	}
	if *verify {
		issues := verif.Partition(c, *k, res.Labels, *limit)
		issues = append(issues, verif.Metrics(c, res.Labels, m)...)
		for _, is := range issues {
			fmt.Fprintln(os.Stderr, "VERIFY:", is)
		}
		if len(issues) > 0 {
			fatal(fmt.Errorf("%d verification issues", len(issues)))
		}
	}

	fmt.Printf("circuit %s: %d gates, %d connections, B_cir=%.2f mA, A_cir=%.4f mm²\n",
		c.Name, c.NumGates(), c.NumEdges(), m.TotalBias, m.TotalArea)
	fmt.Printf("partitioned into K=%d planes in %d iterations (converged=%v)\n", *k, res.Iters, res.Converged)
	fmt.Printf("  d≤1: %.1f%%   d≤2: %.1f%%   d≤⌊K/2⌋: %.1f%%\n", m.DistLEPct(1), m.DistLEPct(2), m.HalfKDistPct())
	fmt.Printf("  B_max=%.2f mA   I_comp=%.2f mA (%.2f%%)\n", m.BMax, m.IComp, m.ICompPct)
	fmt.Printf("  A_max=%.4f mm²  A_FS=%.2f%%\n", m.AMax, m.AFreePct)

	if *plan {
		pl, err := recycle.BuildPlan(c, p, res.Labels, recycle.PlanOptions{Library: lib})
		if err != nil {
			fatal(err)
		}
		if issues := verif.Plan(c, res.Labels, pl); len(issues) > 0 && !reshaped {
			for _, is := range issues {
				fmt.Fprintln(os.Stderr, "VERIFY:", is)
			}
			fatal(fmt.Errorf("recycling plan failed verification"))
		}
		crossings, pairs := m.CrossingCount()
		fmt.Printf("recycling plan: supply %.2f mA (vs %.2f mA parallel, saves %.2f mA)\n",
			pl.SupplyCurrent, m.TotalBias, pl.SavedCurrent())
		fmt.Printf("  stack voltage %.1f mV, %d crossing connections, %d coupler pairs, %d dummy cells\n",
			pl.StackVoltage()*1000, crossings, pairs, totalDummies(pl))
		fmt.Printf("  coupler area %.4f mm², dummy area %.4f mm², worst chain %d hops\n",
			pl.TotalCouplerArea, pl.TotalDummyArea, pl.MaxHopsPerConnection)
	}

	if *showTiming {
		pen, err := timing.ComparePartition(c, res.Labels, timing.Options{Library: lib})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("timing: f_max %.2f GHz → %.2f GHz (ratio %.3f), +%.1f ps latency, %d coupler crossings\n",
			pen.Base.MaxFreqGHz, pen.Partitioned.MaxFreqGHz, pen.FreqRatio,
			pen.AddedLatencyPS, pen.Partitioned.CouplerCrossings)
	}

	if *placedDEF != "" || *layoutSVG != "" {
		layout, err := place.Build(c, *k, res.Labels, place.Options{Library: lib})
		if err != nil {
			fatal(err)
		}
		if err := layout.Validate(); err != nil {
			fatal(err)
		}
		if *placedDEF != "" {
			if err := writeTo(*placedDEF, func(f *os.File) error { return def.WritePlaced(f, c, layout) }); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote placed DEF with plane regions to %s (die %.2f × %.2f mm)\n",
				*placedDEF, layout.DieW, layout.DieH)
		}
		if *layoutSVG != "" {
			if err := writeTo(*layoutSVG, func(f *os.File) error { return svg.WriteLayout(f, layout) }); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote layout SVG to %s\n", *layoutSVG)
		}
	}

	if *stackSVG != "" {
		pl, err := recycle.BuildPlan(c, p, res.Labels, recycle.PlanOptions{Library: lib})
		if err != nil {
			fatal(err)
		}
		if err := writeTo(*stackSVG, func(f *os.File) error { return svg.WriteStack(f, pl) }); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote bias-stack SVG to %s\n", *stackSVG)
	}

	if *assign != "" {
		if err := writeTo(*assign, func(f *os.File) error { return assignio.Write(f, c, res.Labels) }); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote assignment to %s\n", *assign)
	}

	sess.Meta("iters", res.Iters)
	sess.Meta("converged", res.Converged)
	if err := sess.Close(); err != nil {
		cleanup = nil
		fatal(err)
	}
}

func loadCircuit(defPath, lefPath, circuit string) (*netlist.Circuit, *cellib.Library, error) {
	switch {
	case circuit != "" && defPath != "":
		return nil, nil, fmt.Errorf("use either -def or -circuit, not both")
	case circuit != "":
		c, err := gen.Benchmark(circuit, nil)
		return c, cellib.Default(), err
	case defPath != "":
		lib := cellib.Default()
		if lefPath != "" {
			f, err := os.Open(lefPath)
			if err != nil {
				return nil, nil, err
			}
			macros, err := lef.Parse(f)
			f.Close()
			if err != nil {
				return nil, nil, err
			}
			lib, err = lef.ToLibrary("user", macros)
			if err != nil {
				return nil, nil, err
			}
		}
		f, err := os.Open(defPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		d, err := def.Parse(f)
		if err != nil {
			return nil, nil, err
		}
		c, err := def.ToCircuit(d, lib)
		return c, lib, err
	default:
		return nil, nil, fmt.Errorf("need -def or -circuit (see -h)")
	}
}

// parseTermSpecs turns the -terms list (name[:weight[:param]]) and the
// -term-weights list (name=weight) into term specs. Name validation is the
// solver's job — partition.Options rejects unknown names with the
// registered list — so this only parses the shapes.
func parseTermSpecs(termList, termWeights string) ([]partition.TermSpec, error) {
	var out []partition.TermSpec
	for _, part := range strings.Split(termList, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("-terms %q: want name[:weight[:param]]", part)
		}
		ts := partition.TermSpec{Name: strings.TrimSpace(fields[0])}
		if len(fields) > 1 {
			w, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("-terms %q: bad weight: %v", part, err)
			}
			ts.Weight = w
		}
		if len(fields) > 2 {
			p, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("-terms %q: bad param: %v", part, err)
			}
			ts.Param = p
		}
		out = append(out, ts)
	}
	for _, part := range strings.Split(termWeights, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-term-weights %q: want name=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("-term-weights %q: bad weight: %v", part, err)
		}
		out = append(out, partition.TermSpec{Name: strings.TrimSpace(name), Weight: w})
	}
	return out, nil
}

func writeTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func totalDummies(pl *recycle.Plan) int {
	n := 0
	for _, ps := range pl.Planes {
		n += ps.DummyCells
	}
	return n
}

// cleanup, when set, flushes the telemetry session so traces and manifests
// survive error exits too.
var cleanup func() error

func fatal(err error) {
	if cleanup != nil {
		if cerr := cleanup(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gpp-partition:", cerr)
		}
	}
	fmt.Fprintln(os.Stderr, "gpp-partition:", err)
	os.Exit(1)
}
