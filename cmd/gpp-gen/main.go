// Command gpp-gen generates benchmark circuits and writes them as placed
// DEF designs, optionally with the matching LEF cell library.
//
// Usage:
//
//	gpp-gen -circuit KSA8 -o ksa8.def
//	gpp-gen -circuit all -dir bench/            # whole suite
//	gpp-gen -lef cells.lef                      # cell library only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpp/internal/cellib"
	"gpp/internal/def"
	"gpp/internal/gen"
	"gpp/internal/lef"
	"gpp/internal/netlist"
	"gpp/internal/verilog"
)

func main() {
	circuit := flag.String("circuit", "", "benchmark name (KSA4..KSA32, MULT4/8, ID4/8, C432..C3540) or 'all'")
	out := flag.String("o", "", "output DEF path (default <circuit>.def, '-' for stdout)")
	dir := flag.String("dir", ".", "output directory for -circuit all")
	lefPath := flag.String("lef", "", "also write the cell library as LEF to this path")
	asVerilog := flag.Bool("verilog", false, "emit structural Verilog instead of DEF")
	stats := flag.Bool("stats", false, "print circuit statistics to stderr")
	flag.Parse()

	lib := cellib.Default()
	if *lefPath != "" {
		f, err := os.Create(*lefPath)
		if err != nil {
			fatal(err)
		}
		if err := lef.Write(f, lib); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", *lefPath, lib.Len())
	}
	if *circuit == "" {
		if *lefPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		return
	}

	names := []string{*circuit}
	if strings.EqualFold(*circuit, "all") {
		names = gen.BenchmarkNames
	}
	for _, name := range names {
		c, err := gen.Benchmark(name, lib)
		if err != nil {
			fatal(err)
		}
		ext := ".def"
		if *asVerilog {
			ext = ".v"
		}
		path := *out
		if len(names) > 1 || path == "" {
			path = filepath.Join(*dir, strings.ToLower(name)+ext)
		}
		if *asVerilog {
			if err := writeVerilog(path, c); err != nil {
				fatal(err)
			}
		} else if err := writeDEF(path, c, lib); err != nil {
			fatal(err)
		}
		if *stats {
			st := netlist.ComputeStats(c)
			fmt.Fprintf(os.Stderr, "%-7s gates=%-5d conns=%-5d Bcir=%.2f mA Acir=%.4f mm2 depth=%d\n",
				st.Name, st.Gates, st.Edges, st.TotalBias, st.TotalArea, st.Levels)
		}
	}
}

func writeVerilog(path string, c *netlist.Circuit) error {
	if path == "-" {
		return verilog.Write(os.Stdout, c, verilog.Options{})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := verilog.Write(f, c, verilog.Options{}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeDEF(path string, c *netlist.Circuit, lib *cellib.Library) error {
	if path == "-" {
		return def.Write(os.Stdout, c, lib)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := def.Write(f, c, lib); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpp-gen:", err)
	os.Exit(1)
}
