// Command gpp-sim runs single-wave SFQ pulse simulations of a mapped
// netlist: feed input pulses, read output pulses — the quickest way to
// sanity-check that a netlist (generated, or round-tripped through
// DEF/partitioning tools) still computes.
//
// Usage:
//
//	gpp-sim -circuit KSA8 -in a0,a3,b1          # pulse these inputs
//	gpp-sim -circuit KSA4 -in a0,b0 -all        # also dump internal pulses
//	gpp-sim -def design.def -lef cells.lef -in x0
//	gpp-sim -circuit KSA8 -activity 64          # measured switching activity
//	gpp-sim -circuit KSA4 -in a0 -trace sim.jsonl -manifest sim.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"gpp/internal/cellib"
	"gpp/internal/def"
	"gpp/internal/gen"
	"gpp/internal/lef"
	"gpp/internal/netlist"
	"gpp/internal/obs"
	"gpp/internal/obs/obscli"
	"gpp/internal/sim"
)

func main() {
	defPath := flag.String("def", "", "input DEF netlist")
	lefPath := flag.String("lef", "", "LEF cell library for -def")
	circuit := flag.String("circuit", "", "generate a benchmark instead of reading DEF")
	in := flag.String("in", "", "comma-separated input names to pulse (others stay 0)")
	all := flag.Bool("all", false, "dump every gate's pulse, not just outputs")
	activity := flag.Int("activity", 0, "if > 0, measure switching activity over this many random waves instead")
	seed := flag.Int64("seed", 1, "random seed for -activity")
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	sess, err := obsFlags.Start("gpp-sim")
	if err != nil {
		fatal(err)
	}
	cleanup = sess.Close

	c, err := load(*defPath, *lefPath, *circuit)
	if err != nil {
		fatal(err)
	}
	sess.Meta("circuit", map[string]any{
		"name": c.Name, "gates": c.NumGates(), "edges": c.NumEdges(),
	})

	if *activity > 0 {
		act, err := measureActivity(c, *activity, *seed)
		if err != nil {
			fatal(err)
		}
		if sess.Tracer != nil {
			sess.Tracer.Emit(obs.Event{Kind: obs.KindSimActivity,
				Circuit: c.Name, Waves: *activity, Activity: act})
		}
		fmt.Printf("%s: switching activity %.4f pulses/gate/wave over %d random waves\n",
			c.Name, act, *activity)
		if err := sess.Close(); err != nil {
			cleanup = nil
			fatal(err)
		}
		return
	}

	inputs := map[string]bool{}
	if *in != "" {
		for _, name := range strings.Split(*in, ",") {
			inputs[strings.TrimSpace(name)] = true
		}
	}
	res, err := sim.Run(c, inputs, sim.Options{})
	if err != nil {
		fatal(err)
	}
	if sess.Tracer != nil {
		sess.Tracer.Emit(obs.Event{Kind: obs.KindSimWave,
			Circuit: c.Name, Pulses: res.PulseCount})
	}
	names := make([]string, 0, len(res.Outputs))
	for n := range res.Outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d pulses across %d gates\n", c.Name, res.PulseCount, c.NumGates())
	for _, n := range names {
		v := 0
		if res.Outputs[n] {
			v = 1
		}
		fmt.Printf("  %-24s %d\n", n, v)
	}
	if *all {
		fmt.Println("internal pulses:")
		for i, g := range c.Gates {
			if res.Pulse[i] {
				fmt.Printf("  %s\n", g.Name)
			}
		}
	}
	if err := sess.Close(); err != nil {
		cleanup = nil
		fatal(err)
	}
}

func measureActivity(c *netlist.Circuit, waves int, seed int64) (float64, error) {
	// Random waves over the circuit's input converters.
	var names []string
	for _, g := range c.Gates {
		if g.Cell == "DCSFQ" && g.Name != "clk_src" {
			names = append(names, g.Name)
		}
	}
	rng := newLCG(seed)
	ws := make([]map[string]bool, waves)
	for w := range ws {
		in := make(map[string]bool, len(names))
		for _, n := range names {
			in[n] = rng.next()&1 == 1
		}
		ws[w] = in
	}
	return sim.Activity(c, ws, sim.Options{})
}

// Tiny deterministic generator, avoiding a math/rand import for two bits.
type lcg uint64

func newLCG(seed int64) *lcg { l := lcg(seed); return &l }
func (l *lcg) next() uint64 {
	*l = (*l)*6364136223846793005 + 1442695040888963407
	return uint64(*l >> 33)
}

func load(defPath, lefPath, circuit string) (*netlist.Circuit, error) {
	switch {
	case circuit != "" && defPath != "":
		return nil, fmt.Errorf("use either -def or -circuit, not both")
	case circuit != "":
		return gen.Benchmark(circuit, nil)
	case defPath != "":
		lib := cellib.Default()
		if lefPath != "" {
			f, err := os.Open(lefPath)
			if err != nil {
				return nil, err
			}
			macros, err := lef.Parse(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			lib, err = lef.ToLibrary("user", macros)
			if err != nil {
				return nil, err
			}
		}
		f, err := os.Open(defPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		d, err := def.Parse(f)
		if err != nil {
			return nil, err
		}
		return def.ToCircuit(d, lib)
	default:
		return nil, fmt.Errorf("need -def or -circuit")
	}
}

// cleanup, when set, flushes the telemetry session so traces and manifests
// survive error exits too.
var cleanup func() error

func fatal(err error) {
	if cleanup != nil {
		if cerr := cleanup(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gpp-sim:", cerr)
		}
	}
	fmt.Fprintln(os.Stderr, "gpp-sim:", err)
	os.Exit(1)
}
