// Command gpp-sweep solves a declarative scenario matrix — K axes, c-weight
// grids, and regime term portfolios — in one invocation and prints the
// ranked result table.
//
// By default the matrix is solved in process through the library facade.
// With -addr the same spec is submitted to a running gpp-serve daemon as
// POST /v1/sweeps, where every cell is an ordinary content-addressed job:
// cache-hittable, journaled, and stealable by cluster peers.
//
// The spec is a JSON document (see internal/sweep.Spec):
//
//	{
//	  "ks": [3, 5, 7],
//	  "regimes": [
//	    {"name": "paper"},
//	    {"name": "xesfq", "terms": [{"name": "xesfq"}]},
//	    {"name": "ersfq", "terms": [{"name": "current_limit", "weight": 2, "param": 50}]}
//	  ]
//	}
//
// Usage:
//
//	gpp-sweep -circuit KSA32 -ks 3,5,7                     # in-process K sweep
//	gpp-sweep -circuit KSA32 -spec spec.json               # full spec from a file ("-" = stdin)
//	gpp-sweep -circuit KSA32 -spec spec.json -json out.json # save the ranked document
//	gpp-sweep -addr http://localhost:8080 -circuit KSA32 -spec spec.json
//	gpp-inspect sweep out.json                             # re-render a saved document
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"gpp"
	"gpp/internal/serve"
	"gpp/internal/sweep"
)

func main() {
	circuit := flag.String("circuit", "", "benchmark circuit name (KSA8, C3540, par6000, ...)")
	defPath := flag.String("def", "", "DEF netlist instead of -circuit")
	specPath := flag.String("spec", "", "sweep spec JSON file (\"-\" = stdin)")
	ks := flag.String("ks", "", "comma-separated K axis when no -spec file is given (e.g. 3,5,7)")
	k := flag.Int("k", 0, "fallback plane count when the spec declares no K axis")
	rankBy := flag.String("rank-by", "", "ranking metric: cost (default) or b_max; overrides the spec")
	seed := flag.Int64("seed", 1, "solver random seed for every cell")
	workers := flag.Int("workers", 0, "worker goroutines per cell (0 = one per CPU)")
	addr := flag.String("addr", "", "gpp-serve base URL; submit the sweep as POST /v1/sweeps instead of solving in process")
	timeoutMS := flag.Int64("timeout-ms", 0, "with -addr, per-cell deadline in milliseconds (regime timeout_ms overrides)")
	jsonOut := flag.String("json", "", "write the ranked sweep document as JSON to this path")
	flag.Parse()

	spec, err := loadSpec(*specPath, *ks, *rankBy)
	if err != nil {
		fatal(err)
	}

	var doc *sweep.Doc
	if *addr != "" {
		doc, err = runRemote(*addr, *circuit, *defPath, *k, spec, *timeoutMS, *seed, *workers)
	} else {
		doc, err = runLocal(*circuit, *defPath, *k, spec, *seed, *workers)
	}
	if err != nil {
		fatal(err)
	}

	sweep.RenderTable(os.Stdout, doc)
	if *jsonOut != "" {
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gpp-sweep: wrote sweep document to %s\n", *jsonOut)
	}
	if doc.Failed > 0 {
		fmt.Fprintf(os.Stderr, "gpp-sweep: %d of %d cells failed (excluded from the ranking)\n",
			doc.Failed, len(doc.Cells))
	}
}

// loadSpec reads the spec file, or assembles a minimal spec from the -ks
// axis; -rank-by overrides either source.
func loadSpec(path, ks, rankBy string) (sweep.Spec, error) {
	var spec sweep.Spec
	switch {
	case path != "" && ks != "":
		return spec, fmt.Errorf("use either -spec or -ks, not both")
	case path != "":
		var raw []byte
		var err error
		if path == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(path)
		}
		if err != nil {
			return spec, err
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return spec, fmt.Errorf("spec %s: %v", path, err)
		}
	case ks != "":
		for _, part := range strings.Split(ks, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n, err := strconv.Atoi(part)
			if err != nil {
				return spec, fmt.Errorf("-ks %q: %v", part, err)
			}
			spec.Ks = append(spec.Ks, n)
		}
	default:
		return spec, fmt.Errorf("need -spec or -ks (see -h)")
	}
	if rankBy != "" {
		spec.RankBy = rankBy
	}
	return spec, nil
}

// runLocal expands and solves the matrix in process via the facade and
// shapes the outcome as the shared sweep document.
func runLocal(circuit, defPath string, k int, spec sweep.Spec, seed int64, workers int) (*sweep.Doc, error) {
	c, err := loadCircuit(circuit, defPath)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(spec.Ks) == 0 && spec.KRange == nil {
		spec.Ks = []int{k}
	}
	res, err := gpp.Sweep(c, spec, gpp.Options{Seed: seed, Workers: workers})
	if err != nil {
		return nil, err
	}
	doc := &sweep.Doc{
		ID: "local", Status: "done", Circuit: c.Name, RankBy: spec.RankBy,
		Cells:   make([]sweep.CellDoc, len(res.Cells)),
		Ranking: res.Ranking, Pareto: res.Pareto,
	}
	for i, sc := range res.Cells {
		cd := sweep.CellDoc{Index: sc.Index, K: sc.K, Regime: sc.Regime, Terms: sc.Terms}
		if sc.Err != nil {
			cd.Status, cd.Error = "failed", sc.Err.Error()
			doc.Failed++
		} else {
			cost, bmax := sc.Cost, sc.BMaxMA
			cd.Status, cd.Cost, cd.BMaxMA = "done", &cost, &bmax
			doc.Done++
		}
		doc.Cells[i] = cd
	}
	return doc, nil
}

func loadCircuit(circuit, defPath string) (*gpp.Circuit, error) {
	switch {
	case circuit != "" && defPath != "":
		return nil, fmt.Errorf("use either -circuit or -def, not both")
	case circuit != "":
		return gpp.Benchmark(circuit)
	case defPath != "":
		f, err := os.Open(defPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gpp.ReadDEF(f)
	default:
		return nil, fmt.Errorf("need -circuit or -def (see -h)")
	}
}

// runRemote submits the sweep to a gpp-serve daemon and polls until it
// settles; the daemon's status document is the shared document shape.
func runRemote(addr, circuit, defPath string, k int, spec sweep.Spec, timeoutMS, seed int64, workers int) (*sweep.Doc, error) {
	req := serve.SweepRequest{
		Circuit: circuit, K: k, Spec: spec, TimeoutMS: timeoutMS,
		Options: &serve.JobOptions{Seed: seed, Workers: workers},
	}
	if defPath != "" {
		if circuit != "" {
			return nil, fmt.Errorf("use either -circuit or -def, not both")
		}
		raw, err := os.ReadFile(defPath)
		if err != nil {
			return nil, err
		}
		req.DEF = string(raw)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	base := strings.TrimRight(addr, "/")
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	var doc sweep.Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("submit response: %v", err)
	}
	fmt.Fprintf(os.Stderr, "gpp-sweep: submitted %s (%d cells) to %s\n", doc.ID, len(doc.Cells), base)
	lastDone := -1
	for {
		resp, err := http.Get(base + "/v1/sweeps/" + doc.ID)
		if err != nil {
			return nil, err
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if fin := doc.Done + doc.Failed; fin != lastDone {
			lastDone = fin
			fmt.Fprintf(os.Stderr, "gpp-sweep: %d/%d cells finished\n", fin, len(doc.Cells))
		}
		switch doc.Status {
		case "done", "failed", "cancelled":
			return &doc, nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpp-sweep:", err)
	os.Exit(1)
}
