package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestKillRestartDurability is the crash-recovery proof for -data-dir: a
// real gpp-serve subprocess is SIGKILLed mid-solve — no drain, no
// journal goodbye — and a second daemon on the same directory must (a)
// serve the first daemon's finished result from disk byte-identical, as
// a cache hit, and (b) replay the journaled unfinished job under its
// original id and run it to completion.
func TestKillRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := filepath.Join(t.TempDir(), "gpp-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build gpp-serve: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	daemon1, base1 := startDaemon(t, bin, dataDir)

	// Job A: small, runs to completion on daemon 1.
	reqA := `{"circuit":"KSA8","k":4,"options":{"seed":7,"max_iters":300}}`
	idA := submit(t, base1, reqA, http.StatusAccepted)
	waitStatus(t, base1, idA, "done", 60*time.Second)
	resultA := get(t, base1, "/v1/jobs/"+idA+"/result", http.StatusOK)

	// Job B: a multi-second solve. Kill the daemon while it is mid-descent.
	reqB := `{"circuit":"C3540","k":8}`
	idB := submit(t, base1, reqB, http.StatusAccepted)
	waitStatus(t, base1, idB, "running", 60*time.Second)
	time.Sleep(200 * time.Millisecond) // well inside the gradient loop
	if err := daemon1.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL daemon: %v", err)
	}
	_ = daemon1.Wait()

	_, base2 := startDaemon(t, bin, dataDir)

	// (a) Daemon 2 has never solved job A's request, yet answers it
	// synchronously from the persisted cache, byte-identical.
	idA2 := submit(t, base2, reqA, http.StatusOK)
	var sb struct {
		Cache  string          `json:"cache"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(getStatusDoc(t, base2, idA2), &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Cache != "hit" {
		t.Fatalf("replayed submission cache = %q, want hit", sb.Cache)
	}
	resultA2 := get(t, base2, "/v1/jobs/"+idA2+"/result", http.StatusOK)
	if !bytes.Equal(resultA, resultA2) {
		t.Fatalf("result changed across SIGKILL restart:\n pre: %s\npost: %s", resultA, resultA2)
	}

	// (b) Job B was journaled but never finished; daemon 2 must have
	// re-enqueued it under its original id and completed it.
	waitStatus(t, base2, idB, "done", 120*time.Second)
	resultB := get(t, base2, "/v1/jobs/"+idB+"/result", http.StatusOK)
	if len(resultB) == 0 {
		t.Fatal("replayed job finished with an empty result")
	}
	// A fresh identical submission now hits the cache with those bytes.
	idB2 := submit(t, base2, reqB, http.StatusOK)
	resultB2 := get(t, base2, "/v1/jobs/"+idB2+"/result", http.StatusOK)
	if !bytes.Equal(resultB, resultB2) {
		t.Fatal("replayed result and its cache hit differ")
	}

	// The recovery is visible in the metrics.
	metrics := string(get(t, base2, "/metrics", http.StatusOK))
	for _, want := range []string{
		"gpp_serve_jobs_recovered_total 1",
		"gpp_journal_replayed_total",
		"gpp_serve_cache_disk_hits_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

var listenRe = regexp.MustCompile(`listening on http://(\S+)`)

// startDaemon launches the built binary on a free port with the given
// data dir, parses the bound address off stderr, and registers cleanup.
func startDaemon(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-data-dir", dataDir,
		"-workers", "1", "-queue", "8")
	return cmd, bootDaemon(t, cmd)
}

// bootDaemon starts a prepared gpp-serve command, parses the bound address
// off its stderr, and registers cleanup.
func bootDaemon(t *testing.T, cmd *exec.Cmd) string {
	t.Helper()
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			fmt.Fprintln(os.Stderr, "  [daemon]", line)
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never reported its listen address")
		return ""
	}
}

// submit posts a job document and returns its id, asserting the HTTP
// code (202 = queued, 200 = synchronous cache hit).
func submit(t *testing.T, base, body string, wantCode int) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("submit = %d, want %d: %s", resp.StatusCode, wantCode, raw)
	}
	var sb struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &sb); err != nil || sb.ID == "" {
		t.Fatalf("bad submit response %q: %v", raw, err)
	}
	return sb.ID
}

func getStatusDoc(t *testing.T, base, id string) []byte {
	t.Helper()
	return get(t, base, "/v1/jobs/"+id, http.StatusOK)
}

func get(t *testing.T, base, path string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d: %s", path, resp.StatusCode, wantCode, raw)
	}
	return raw
}

// waitStatus polls a job until it reaches the wanted state; any terminal
// state other than the wanted one fails immediately.
func waitStatus(t *testing.T, base, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var sb struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(getStatusDoc(t, base, id), &sb); err != nil {
			t.Fatal(err)
		}
		if sb.Status == want {
			return
		}
		switch sb.Status {
		case "done", "failed", "cancelled":
			t.Fatalf("job %s reached %s (%s) while waiting for %s", id, sb.Status, sb.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s within %v", id, want, timeout)
}
