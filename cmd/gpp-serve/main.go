// Command gpp-serve runs the partition daemon: an HTTP/JSON service that
// accepts partition jobs, solves them on a bounded worker pool, and
// answers repeated requests from a content-addressed result cache.
//
// Usage:
//
//	gpp-serve -addr :8399
//	gpp-serve -addr :8399 -workers 4 -queue 128 -cache 512
//
// Submit a job and read it back:
//
//	curl -s localhost:8399/v1/jobs -d '{"circuit":"KSA8","k":5}'
//	curl -s localhost:8399/v1/jobs/<id>
//	curl -s localhost:8399/v1/jobs/<id>/result
//	curl -s localhost:8399/v1/jobs/<id>/assignment
//	curl -Ns localhost:8399/v1/jobs/<id>/events        # SSE progress
//
// The daemon serves /healthz, /metrics (Prometheus text), /debug/vars and
// /debug/pprof from the same listener. SIGTERM/SIGINT starts a graceful
// drain: admissions stop with 503, accepted jobs run to completion (up to
// -drain-timeout), then the process exits.
//
// With -data-dir the daemon is durable: solved results persist to a
// content-addressed blob store in that directory and accepted jobs are
// write-ahead journaled, so a crash or redeploy restarts with the cache
// intact and re-runs unfinished jobs under their original ids.
// -store-max-bytes bounds the blob store (GC at boot, oldest first).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpp/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8399", "listen address (host:port; :0 picks a free port)")
	queue := flag.Int("queue", 64, "max jobs waiting in the queue before submissions get 429")
	workers := flag.Int("workers", 0, "jobs solved concurrently (0 = one per CPU)")
	cacheEntries := flag.Int("cache", 256, "content-addressed result cache size in entries (negative disables)")
	maxJobs := flag.Int("max-jobs", 4096, "job registry size; oldest finished jobs are evicted beyond it")
	defaultTimeout := flag.Duration("default-job-time", 2*time.Minute, "per-job deadline when the request sets none")
	maxTimeout := flag.Duration("max-job-time", 10*time.Minute, "cap on any requested per-job deadline")
	progressEvery := flag.Int("progress-every", 25, "stream every Nth solver iteration on /events (1 = all)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs")
	dataDir := flag.String("data-dir", "", "durable state directory: persists the result cache and write-ahead job journal across restarts (empty = in-memory)")
	storeMax := flag.Int64("store-max-bytes", 0, "blob-store size budget enforced at boot, oldest entries evicted first (0 = unbounded; needs -data-dir)")
	flightRec := flag.Int("flight-recorder", 0, "per-job flight-recorder ring size in events (0 = default 256, negative disables tracing)")
	sloSolve := flag.Duration("slo-solve-ms", 0, "solve-latency SLO; jobs finishing over it count toward gpp_serve_slo_breached_total (0 disables)")
	sseKeepalive := flag.Duration("sse-keepalive", 0, "SSE comment-line heartbeat interval on /events (0 = default 15s, negative disables)")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		QueueDepth:        *queue,
		Workers:           *workers,
		CacheEntries:      *cacheEntries,
		MaxJobs:           *maxJobs,
		DefaultJobTimeout: *defaultTimeout,
		MaxJobTimeout:     *maxTimeout,
		ProgressEvery:     *progressEvery,
		DataDir:           *dataDir,
		StoreMaxBytes:     *storeMax,
		FlightRecorder:    *flightRec,
		SLOSolve:          *sloSolve,
		SSEKeepalive:      *sseKeepalive,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpp-serve:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	err = srv.Run(ctx, *addr, *drainTimeout, func(bound string) {
		fmt.Fprintf(os.Stderr, "gpp-serve: listening on http://%s (healthz, /v1/jobs, /metrics, /debug/pprof)\n", bound)
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "gpp-serve:", err)
		os.Exit(1)
	}
	if err != nil {
		// Forced drain: the grace period expired and in-flight jobs were
		// cancelled. Report it but exit cleanly — the drain completed.
		fmt.Fprintln(os.Stderr, "gpp-serve: drain timeout expired; in-flight jobs cancelled")
	}
}
