// Command gpp-serve runs the partition daemon: an HTTP/JSON service that
// accepts partition jobs, solves them on a bounded worker pool, and
// answers repeated requests from a content-addressed result cache.
//
// Usage:
//
//	gpp-serve -addr :8399
//	gpp-serve -addr :8399 -workers 4 -queue 128 -cache 512
//
// Submit a job and read it back:
//
//	curl -s localhost:8399/v1/jobs -d '{"circuit":"KSA8","k":5}'
//	curl -s localhost:8399/v1/jobs/<id>
//	curl -s localhost:8399/v1/jobs/<id>/result
//	curl -s localhost:8399/v1/jobs/<id>/assignment
//	curl -Ns localhost:8399/v1/jobs/<id>/events        # SSE progress
//
// The daemon serves /healthz, /metrics (Prometheus text), /debug/vars and
// /debug/pprof from the same listener. SIGTERM/SIGINT starts a graceful
// drain: admissions stop with 503, accepted jobs run to completion (up to
// -drain-timeout), then the process exits.
//
// With -data-dir the daemon is durable: solved results persist to a
// content-addressed blob store in that directory and accepted jobs are
// write-ahead journaled, so a crash or redeploy restarts with the cache
// intact and re-runs unfinished jobs under their original ids.
// -store-max-bytes bounds the blob store (GC at boot, oldest first).
//
// With -peers (or -peers-file) and -advertise the daemon joins a static
// cluster: submissions route to the consistent-hash owner of their cache
// key, local cache misses read through to peers before solving, and idle
// nodes steal queued jobs from busy ones:
//
//	gpp-serve -addr :8400 -advertise http://10.0.0.1:8400 \
//	    -peers http://10.0.0.2:8400,http://10.0.0.3:8400 -data-dir /var/gpp
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpp/internal/cluster"
	"gpp/internal/serve"
)

// clusterConfig assembles the membership config from the cluster flags,
// or returns nil (single-node) when no peers were named.
func clusterConfig(peers, peersFile, advertise string, readReplicas int,
	heartbeat, stealEvery, stealLease, peerTimeout, backoffMax time.Duration) (*cluster.Config, error) {
	var urls []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			urls = append(urls, p)
		}
	}
	if peersFile != "" {
		raw, err := os.ReadFile(peersFile)
		if err != nil {
			return nil, fmt.Errorf("-peers-file: %w", err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			urls = append(urls, line)
		}
	}
	if len(urls) == 0 {
		if advertise != "" {
			return nil, fmt.Errorf("-advertise given but no peers (use -peers or -peers-file)")
		}
		return nil, nil
	}
	if advertise == "" {
		return nil, fmt.Errorf("clustering needs -advertise: the URL peers reach this node at")
	}
	return &cluster.Config{
		Self:           advertise,
		Peers:          urls,
		ReadReplicas:   readReplicas,
		HeartbeatEvery: heartbeat,
		StealEvery:     stealEvery,
		StealLease:     stealLease,
		PeerTimeout:    peerTimeout,
		BackoffMax:     backoffMax,
	}, nil
}

func main() {
	addr := flag.String("addr", ":8399", "listen address (host:port; :0 picks a free port)")
	queue := flag.Int("queue", 64, "max jobs waiting in the queue before submissions get 429")
	workers := flag.Int("workers", 0, "jobs solved concurrently (0 = one per CPU)")
	cacheEntries := flag.Int("cache", 256, "content-addressed result cache size in entries (negative disables)")
	maxJobs := flag.Int("max-jobs", 4096, "job registry size; oldest finished jobs are evicted beyond it")
	defaultTimeout := flag.Duration("default-job-time", 2*time.Minute, "per-job deadline when the request sets none")
	maxTimeout := flag.Duration("max-job-time", 10*time.Minute, "cap on any requested per-job deadline")
	progressEvery := flag.Int("progress-every", 25, "stream every Nth solver iteration on /events (1 = all)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs")
	dataDir := flag.String("data-dir", "", "durable state directory: persists the result cache and write-ahead job journal across restarts (empty = in-memory)")
	storeMax := flag.Int64("store-max-bytes", 0, "blob-store size budget enforced at boot, oldest entries evicted first (0 = unbounded; needs -data-dir)")
	flightRec := flag.Int("flight-recorder", 0, "per-job flight-recorder ring size in events (0 = default 256, negative disables tracing)")
	sloSolve := flag.Duration("slo-solve-ms", 0, "solve-latency SLO; jobs finishing over it count toward gpp_serve_slo_breached_total (0 disables)")
	sseKeepalive := flag.Duration("sse-keepalive", 0, "SSE comment-line heartbeat interval on /events (0 = default 15s, negative disables)")
	peers := flag.String("peers", "", "comma-separated peer base URLs; joining a cluster routes jobs to their consistent-hash owner")
	peersFile := flag.String("peers-file", "", "file of peer base URLs, one per line (# comments); merged with -peers")
	advertise := flag.String("advertise", "", "base URL peers reach this node at (required with -peers/-peers-file)")
	readReplicas := flag.Int("read-replicas", 0, "extra ring successors consulted on peer cache read-through (0 = default 1)")
	heartbeat := flag.Duration("heartbeat", 0, "peer heartbeat interval (0 = default 2s)")
	stealInterval := flag.Duration("steal-interval", 0, "how often an idle node polls busy peers for work (0 = default 1s)")
	stealLease := flag.Duration("steal-lease", 0, "how long a stolen job may run before the owner reclaims it (0 = default 30s)")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-request timeout for peer HTTP calls (0 = default 3s)")
	backoffMax := flag.Duration("peer-backoff-max", 0, "cap on a failing peer's circuit-breaker cooldown — bounds how long a recovered peer stays invisible (0 = default 30s)")
	flag.Parse()

	clusterCfg, err := clusterConfig(*peers, *peersFile, *advertise, *readReplicas,
		*heartbeat, *stealInterval, *stealLease, *peerTimeout, *backoffMax)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpp-serve:", err)
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		QueueDepth:        *queue,
		Workers:           *workers,
		CacheEntries:      *cacheEntries,
		MaxJobs:           *maxJobs,
		DefaultJobTimeout: *defaultTimeout,
		MaxJobTimeout:     *maxTimeout,
		ProgressEvery:     *progressEvery,
		DataDir:           *dataDir,
		StoreMaxBytes:     *storeMax,
		FlightRecorder:    *flightRec,
		SLOSolve:          *sloSolve,
		SSEKeepalive:      *sseKeepalive,
		Cluster:           clusterCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpp-serve:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	err = srv.Run(ctx, *addr, *drainTimeout, func(bound string) {
		fmt.Fprintf(os.Stderr, "gpp-serve: listening on http://%s (healthz, /v1/jobs, /metrics, /debug/pprof)\n", bound)
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "gpp-serve:", err)
		os.Exit(1)
	}
	if err != nil {
		// Forced drain: the grace period expired and in-flight jobs were
		// cancelled. Report it but exit cleanly — the drain completed.
		fmt.Fprintln(os.Stderr, "gpp-serve: drain timeout expired; in-flight jobs cancelled")
	}
}
