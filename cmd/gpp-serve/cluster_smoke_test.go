package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"gpp/internal/cluster"
)

// TestClusterSmoke is the 3-node end-to-end proof for `make cluster-smoke`:
// real gpp-serve subprocesses with static membership. It asserts
//
//   - routing: one request submitted through every node lands on a single
//     consistent-hash owner and every answer is byte-identical;
//   - cross-node cache: a mixed workload spread over the nodes is
//     re-readable through any node;
//   - crash recovery: a node SIGKILLed with journaled work mid-queue
//     replays it on restart and the cluster (work stealing included)
//     finishes every job exactly once under its original id;
//   - drain: SIGTERM exits 0.
//
// Each node's stderr is written to $CLUSTER_SMOKE_LOG_DIR (or a temp dir)
// so CI can attach the logs of a failed run.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := filepath.Join(t.TempDir(), "gpp-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build gpp-serve: %v\n%s", err, out)
	}
	logDir := os.Getenv("CLUSTER_SMOKE_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Logf("node logs in %s", logDir)

	// Static membership needs every URL before any node boots: reserve
	// three ports, then hand them out.
	addrs := reservePorts(t, 3)
	urls := make([]string, 3)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	dataDirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	nodes := make([]*exec.Cmd, 3)
	for i := range nodes {
		nodes[i] = startClusterNode(t, bin, i, addrs, urls, dataDirs, logDir)
	}
	for _, u := range urls {
		waitHealthy(t, u)
	}

	// Mixed workload spread over all three nodes: two K values, distinct
	// seeds, submitted round-robin. Track where each job ended up (the
	// routing header names the owner when the receiving node forwarded).
	type smokeJob struct{ id, home, req string }
	var jobs []smokeJob
	for i := 0; i < 6; i++ {
		req := fmt.Sprintf(`{"circuit":"KSA8","k":%d,"options":{"seed":%d,"max_iters":300}}`, 4+i%2, 100+i)
		entry := urls[i%3]
		id, routedTo, code := submitRouted(t, entry, req, "")
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("job %d submit = %d", i, code)
		}
		home := entry
		if routedTo != "" {
			home = routedTo
		}
		jobs = append(jobs, smokeJob{id: id, home: home, req: req})
	}
	for _, jb := range jobs {
		waitStatus(t, jb.home, jb.id, "done", 60*time.Second)
	}

	// Routing + cross-node cache: resubmitting each request through every
	// node must 200 with one consistent owner and identical bytes.
	for _, jb := range jobs {
		ref := get(t, jb.home, "/v1/jobs/"+jb.id+"/result", http.StatusOK)
		for _, entry := range urls {
			id, routedTo, code := submitRouted(t, entry, jb.req, "")
			if code != http.StatusOK {
				t.Fatalf("warm resubmit via %s = %d, want 200", entry, code)
			}
			owner := entry
			if routedTo != "" {
				owner = routedTo
			}
			if owner != jb.home {
				t.Fatalf("request routed to %s, first submission went to %s", owner, jb.home)
			}
			got := get(t, owner, "/v1/jobs/"+id+"/result", http.StatusOK)
			if !bytes.Equal(got, ref) {
				t.Fatalf("result via %s differs from owner copy", entry)
			}
		}
	}

	// Crash recovery: occupy node 2's worker with a never-converging solve
	// and queue two fast jobs behind it, all pinned local (the forwarded
	// marker bypasses ring routing), then SIGKILL it mid-queue. The journal
	// has all three accepts; the restarted node replays them, its worker is
	// busy with the slow replay again, and the idle peers steal the fast
	// jobs and complete them under their original ids.
	slow := `{"circuit":"KSA8","k":4,"options":{"seed":900,"max_iters":1000000,"margin":1e-300,"learn_rate":0.5}}`
	slowID, _, _ := submitRouted(t, urls[2], slow, "pin")
	waitStatus(t, urls[2], slowID, "running", 60*time.Second)
	var fastIDs []string
	for i := 0; i < 2; i++ {
		req := fmt.Sprintf(`{"circuit":"KSA8","k":4,"options":{"seed":%d,"max_iters":300}}`, 910+i)
		id, _, code := submitRouted(t, urls[2], req, "pin")
		if code != http.StatusAccepted {
			t.Fatalf("pinned job = %d, want 202 (must queue, not hit)", code)
		}
		fastIDs = append(fastIDs, id)
	}
	if err := nodes[2].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = nodes[2].Wait()

	nodes[2] = startClusterNode(t, bin, 2, addrs, urls, dataDirs, logDir)
	waitHealthy(t, urls[2])
	for _, id := range fastIDs {
		waitStatus(t, urls[2], id, "done", 120*time.Second)
		if len(get(t, urls[2], "/v1/jobs/"+id+"/result", http.StatusOK)) == 0 {
			t.Fatalf("replayed job %s has an empty result", id)
		}
	}
	metrics := string(get(t, urls[2], "/metrics", http.StatusOK))
	if !strings.Contains(metrics, "gpp_serve_jobs_recovered_total 3") {
		t.Errorf("node 2 did not report 3 recovered jobs after SIGKILL restart")
	}
	// Free node 2's worker (the slow job replayed too) so drain is quick.
	delReq, _ := http.NewRequest(http.MethodDelete, urls[2]+"/v1/jobs/"+slowID, nil)
	if resp, err := http.DefaultClient.Do(delReq); err == nil {
		resp.Body.Close()
	}

	// Clean drain: SIGTERM must exit 0 within the drain window.
	for i, node := range nodes {
		if err := node.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM node %d: %v", i, err)
		}
	}
	for i, node := range nodes {
		if err := node.Wait(); err != nil {
			t.Errorf("node %d did not drain cleanly: %v", i, err)
		}
	}
	if t.Failed() {
		dumpLogs(t, logDir)
	}
}

// reservePorts grabs n distinct loopback ports and releases them just
// before the daemons bind (a small race, fine for a smoke test).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return addrs
}

// startClusterNode boots cluster member i with tight smoke-test timings
// and its stderr teed to <logDir>/node<i>.log.
func startClusterNode(t *testing.T, bin string, i int, addrs, urls, dataDirs []string, logDir string) *exec.Cmd {
	t.Helper()
	var peers []string
	for k, u := range urls {
		if k != i {
			peers = append(peers, u)
		}
	}
	cmd := exec.Command(bin,
		"-addr", addrs[i], "-advertise", urls[i],
		"-peers", strings.Join(peers, ","),
		"-data-dir", dataDirs[i],
		"-workers", "1", "-queue", "16",
		"-heartbeat", "50ms", "-steal-interval", "50ms",
		"-steal-lease", "2s", "-peer-timeout", "2s",
		"-peer-backoff-max", "200ms",
		"-drain-timeout", "10s")
	logPath := filepath.Join(logDir, fmt.Sprintf("node%d.log", i))
	logFile, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	ready := make(chan struct{})
	go func() {
		defer logFile.Close()
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logFile, line)
			if strings.Contains(line, "listening on http://") {
				select {
				case ready <- struct{}{}:
				default:
				}
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("node %d never reported its listen address (log: %s)", i, logPath)
	}
	return cmd
}

// waitHealthy blocks until the node answers /healthz AND its heartbeats
// have seen every peer — submissions before that point legitimately
// degrade to local handling, which is not what the routing assertions
// want to exercise.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			var h struct {
				Cluster struct {
					Nodes      int `json:"nodes"`
					PeersAlive int `json:"peers_alive"`
				} `json:"cluster"`
			}
			ok := resp.StatusCode == http.StatusOK &&
				json.NewDecoder(resp.Body).Decode(&h) == nil &&
				h.Cluster.PeersAlive == h.Cluster.Nodes-1
			resp.Body.Close()
			if ok {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy with all peers alive", base)
}

// submitRouted posts a job document and returns (id, routed-to, code).
// A non-empty pin sets the forwarded marker, keeping the job on the
// receiving node regardless of ring ownership.
func submitRouted(t *testing.T, base, body, pin string) (string, string, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if pin != "" {
		req.Header.Set(cluster.ForwardedHeader, pin)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var sb struct {
		ID string `json:"id"`
	}
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &sb); err != nil || sb.ID == "" {
			t.Fatalf("bad submit response %q: %v", raw, err)
		}
	}
	return sb.ID, resp.Header.Get(cluster.RoutedHeader), resp.StatusCode
}

func dumpLogs(t *testing.T, logDir string) {
	t.Helper()
	entries, err := os.ReadDir(logDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(logDir, e.Name()))
		if err != nil {
			continue
		}
		t.Logf("=== %s ===\n%s", e.Name(), raw)
	}
}
