package main

import (
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestObsSmoke boots the real gpp-serve binary with tracing and an SLO
// configured, runs one job through it, and asserts the observability
// surface is well-formed end to end: the job's flight-recorder profile is
// one connected span tree, /v1/debug/ops reports the solve in JSON and as
// a text waterfall, and the SLO/latency metrics appear on /metrics. This
// is the `make obs-smoke` gate.
func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := filepath.Join(t.TempDir(), "gpp-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build gpp-serve: %v\n%s", err, out)
	}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-data-dir", t.TempDir(),
		"-workers", "1", "-queue", "8", "-slo-solve-ms", "1h")
	base := bootDaemon(t, cmd)

	id := submit(t, base, `{"circuit":"KSA8","k":4,"options":{"seed":3,"max_iters":300}}`, http.StatusAccepted)
	waitStatus(t, base, id, "done", 60*time.Second)

	// Profile: one connected, timed span tree for the whole lifecycle.
	var profile struct {
		ID     string            `json:"id"`
		Status string            `json:"status"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(get(t, base, "/v1/jobs/"+id+"/profile", http.StatusOK), &profile); err != nil {
		t.Fatalf("profile is not JSON: %v", err)
	}
	if profile.ID != id || profile.Status != "done" || len(profile.Events) == 0 {
		t.Fatalf("profile = id %q status %q with %d events", profile.ID, profile.Status, len(profile.Events))
	}
	spans := map[string]bool{}
	rootSeen := false
	for _, raw := range profile.Events {
		var e struct {
			Kind  string `json:"ev"`
			Span  string `json:"span"`
			PSID  int64  `json:"psid"`
			DurUS int64  `json:"dur_us"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("profile event %s: %v", raw, err)
		}
		if e.Kind != "span" {
			continue
		}
		spans[e.Span] = true
		if e.PSID == 0 {
			if e.Span != "job" {
				t.Errorf("root span is %q, want job", e.Span)
			}
			if e.DurUS <= 0 {
				t.Errorf("root span duration %dµs, want > 0 (timed trace)", e.DurUS)
			}
			rootSeen = true
		}
	}
	if !rootSeen {
		t.Error("profile has no root span")
	}
	for _, want := range []string{"queue_wait", "cache_lookup", "wal_accept", "solve", "descent", "persist"} {
		if !spans[want] {
			t.Errorf("profile missing %q span (got %v)", want, spans)
		}
	}

	textProfile := string(get(t, base, "/v1/jobs/"+id+"/profile?format=text", http.StatusOK))
	if !strings.Contains(textProfile, "└─") || !strings.Contains(textProfile, "job [") {
		t.Errorf("text profile is not a waterfall:\n%s", textProfile)
	}

	// Ops snapshot: JSON shape and text console.
	var ops struct {
		Workers int `json:"workers"`
		Jobs    struct {
			Submitted int64 `json:"submitted"`
			Completed int64 `json:"completed"`
		} `json:"jobs"`
		Latency struct {
			SolveP50S float64 `json:"solve_p50_s"`
		} `json:"latency"`
		SLO *struct {
			Within   int64 `json:"within"`
			Breached int64 `json:"breached"`
		} `json:"slo"`
		Recent []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(get(t, base, "/v1/debug/ops", http.StatusOK), &ops); err != nil {
		t.Fatalf("ops is not JSON: %v", err)
	}
	if ops.Jobs.Submitted < 1 || ops.Jobs.Completed < 1 || ops.Latency.SolveP50S <= 0 {
		t.Errorf("ops = %+v, want a recorded solve", ops)
	}
	if ops.SLO == nil || ops.SLO.Within < 1 || ops.SLO.Breached != 0 {
		t.Errorf("ops slo = %+v, want the solve within a 1h target", ops.SLO)
	}
	if len(ops.Recent) == 0 || ops.Recent[0].ID != id {
		t.Errorf("ops recent = %+v, want job %s first", ops.Recent, id)
	}
	opsText := string(get(t, base, "/v1/debug/ops?format=text", http.StatusOK))
	for _, want := range []string{"gpp-serve ops", "slo:", "└─"} {
		if !strings.Contains(opsText, want) {
			t.Errorf("ops text missing %q:\n%s", want, opsText)
		}
	}

	// Latency histogram quantiles and SLO counters are exported.
	metrics := string(get(t, base, "/metrics", http.StatusOK))
	for _, want := range []string{
		"gpp_serve_job_seconds_p50",
		"gpp_serve_queue_wait_seconds_p99",
		"gpp_serve_slo_within_total 1",
		"gpp_serve_slo_breached_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Healthz carries the ops vitals.
	var health struct {
		Status  string   `json:"status"`
		UptimeS *float64 `json:"uptime_s"`
	}
	if err := json.Unmarshal(get(t, base, "/healthz", http.StatusOK), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.UptimeS == nil {
		t.Errorf("healthz = %+v", health)
	}
}
