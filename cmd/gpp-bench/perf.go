// perf.go implements gpp-bench's -perf mode: a self-contained micro-benchmark
// harness over the solver hot path that appends its measurements to a
// perf-trajectory JSON file (BENCH_PR6.json by default). Each invocation
// records one labelled series — run it once per commit of interest and the
// file accumulates a before/after history that future PRs can extend:
//
//	gpp-bench -perf -perf-label pr3-baseline            # first series
//	gpp-bench -perf -perf-label pr4-fused -perf-append  # append a second
//
// The measured quantities mirror the root-package `go test` benchmarks
// (BenchmarkSolver*, BenchmarkCostGradient) but run at a fixed iteration
// count (Margin is unreachable), so ns/iter is literal: ns_per_op divided by
// the solver iterations performed per op. Workers sweeps {1, 4, NumCPU}
// deduplicated — the determinism invariant makes the outputs bitwise
// identical at every count, so the sweep measures pure dispatch overhead.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"gpp/internal/gen"
	"gpp/internal/multilevel"
	"gpp/internal/partition"
	"gpp/internal/store"
	"gpp/internal/terms"
)

// perfSchema versions the file layout so future PRs can evolve it without
// guessing what an old artifact means.
const perfSchema = "gpp-bench-perf/v1"

type perfBench struct {
	Name        string  `json:"name"`
	Circuit     string  `json:"circuit"`
	K           int     `json:"k"`
	Workers     int     `json:"workers"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	ItersPerOp  int     `json:"iters_per_op"`
	NsPerIter   float64 `json:"ns_per_iter"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type perfSeries struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Smoke      bool        `json:"smoke,omitempty"`
	Benchmarks []perfBench `json:"benchmarks"`
}

type perfFile struct {
	Schema string       `json:"schema"`
	Note   string       `json:"note"`
	Series []perfSeries `json:"series"`
}

// perfWorkerSweep is {1, 4, NumCPU} with duplicates removed, order
// preserved — the counts named by the PR-4 acceptance criteria.
func perfWorkerSweep() []int {
	candidates := []int{1, 4, runtime.NumCPU()}
	var out []int
	for _, w := range candidates {
		dup := false
		for _, seen := range out {
			if seen == w {
				dup = true
			}
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// measureOnce times repeated calls of op until the time budget or the op
// cap is spent (always at least one timed call, after one untimed warm-up)
// and returns per-op wall time and heap-allocation figures. Allocations are
// process-wide deltas from runtime.MemStats, so worker-goroutine allocations
// are charged to the op that caused them — exactly what the alloc-free
// iteration-path guarantee is about.
func measureOnce(op func(), budget time.Duration, maxOps int) (ops int, nsPerOp, allocsPerOp, bytesPerOp float64) {
	op() // warm-up: scratch pools, code paths, branch predictors
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for {
		op()
		ops++
		if ops >= maxOps || time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(ops)
	nsPerOp = float64(elapsed.Nanoseconds()) / n
	allocsPerOp = float64(m1.Mallocs-m0.Mallocs) / n
	bytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / n
	return ops, nsPerOp, allocsPerOp, bytesPerOp
}

// measureOp runs measureOnce `perfRepeat` times and reports the repeat with
// the median ns/op (lower middle for even counts — a real measured sample,
// never an interpolation). On shared hosts the occasional multi-second
// hypervisor stall can blanket one whole measurement window and distort a
// cell by several ×; the median of independent windows discards those
// outliers in either direction without inventing numbers.
var perfRepeat = 1

func measureOp(op func(), budget time.Duration, maxOps int) (ops int, nsPerOp, allocsPerOp, bytesPerOp float64) {
	type sample struct {
		ops                         int
		ns, allocsPerOp, bytesPerOp float64
	}
	r := perfRepeat
	if r < 1 {
		r = 1
	}
	samples := make([]sample, 0, r)
	for i := 0; i < r; i++ {
		ops, ns, allocs, bytes := measureOnce(op, budget, maxOps)
		samples = append(samples, sample{ops, ns, allocs, bytes})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].ns < samples[j].ns })
	med := samples[(len(samples)-1)/2]
	return med.ops, med.ns, med.allocsPerOp, med.bytesPerOp
}

// perfProblem builds a named benchmark circuit as a partition problem;
// gen.Benchmark covers both the Table I names and the par<N> scaling
// synthetics (par6000, par100000, par1000000, …).
func perfProblem(name string, k int) (*partition.Problem, error) {
	c, err := gen.Benchmark(name, nil)
	if err != nil {
		return nil, err
	}
	return partition.FromCircuit(c, k)
}

// frozenTailProblem builds the incremental-tier showcase topology: a
// 256-gate edged core carrying all bias/area, plus an edge-free tail of
// zero-attribute gates whose rows clamp-freeze at one-hot vertices under
// F4 — after which their shards go clean and the incremental planner's
// skip masks engage. Mirrors the partition package's fuzz topology.
func frozenTailProblem(g, e, k int) (*partition.Problem, error) {
	rng := rand.New(rand.NewSource(9))
	bias := make([]float64, g)
	area := make([]float64, g)
	span := g / 2
	if span > 256 {
		span = 256
	}
	for i := 0; i < span; i++ {
		bias[i] = 0.2 + rng.Float64()
		area[i] = 0.001 + 0.004*rng.Float64()
	}
	var edges [][2]int
	for len(edges) < e {
		a, b := rng.Intn(span), rng.Intn(span)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	return partition.NewProblem("frozen-tail", k, bias, area, edges)
}

// runPerf executes the benchmark matrix and writes (or appends to) the
// trajectory file. In smoke mode it shrinks to one tiny circuit and a single
// op per cell — a seconds-long liveness check that keeps the harness wired
// into `make check` without slowing the gate down.
func runPerf(out, label string, appendSeries, smoke bool, budget time.Duration) error {
	solverCircuits := []struct {
		circuit string
		k       int
		iters   int
	}{
		{"KSA32", 5, 40},
		{"C3540", 5, 40},
		{"par6000", 5, 40},
	}
	costGradCircuits := []string{"C432", "par6000"}
	maxOps := 1 << 20
	if smoke {
		solverCircuits = solverCircuits[:0]
		solverCircuits = append(solverCircuits, struct {
			circuit string
			k       int
			iters   int
		}{"KSA4", 5, 2})
		costGradCircuits = []string{"KSA4"}
		maxOps = 1
		budget = 0
		perfRepeat = 1 // liveness check: one window is the point
	}

	series := perfSeries{
		Label:     label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Smoke:     smoke,
	}

	for _, sc := range solverCircuits {
		p, err := perfProblem(sc.circuit, sc.k)
		if err != nil {
			return err
		}
		for _, workers := range perfWorkerSweep() {
			opts := partition.Options{
				Seed: 1, MaxIters: sc.iters, Margin: 1e-300, Workers: workers,
			}
			iters := 0
			op := func() {
				res, err := p.Solve(opts)
				if err != nil {
					panic(err)
				}
				iters = res.Iters
			}
			ops, ns, allocs, bytes := measureOp(op, budget, maxOps)
			b := perfBench{
				Name:    fmt.Sprintf("BenchmarkSolver%sK%dW%d", sc.circuit, sc.k, workers),
				Circuit: sc.circuit, K: sc.k, Workers: workers,
				Ops: ops, NsPerOp: ns, ItersPerOp: iters,
				NsPerIter:   ns / float64(iters),
				AllocsPerOp: allocs, BytesPerOp: bytes,
			}
			series.Benchmarks = append(series.Benchmarks, b)
			fmt.Fprintf(os.Stderr, "perf: %-34s %12.0f ns/op %10.0f ns/iter %8.1f allocs/op\n",
				b.Name, b.NsPerOp, b.NsPerIter, b.AllocsPerOp)
		}
	}

	// Checkpoint-interval sweep: the same fixed-iteration solve with the
	// durable snapshot hook off (the baseline every non-durable caller
	// gets — must cost ~0) and firing every N iterations, each firing an
	// encode + atomic fsync'd file replace. ns_per_iter against the
	// baseline prices the crash-safety a -checkpoint run buys.
	ckpt := struct {
		circuit string
		k       int
		iters   int
	}{"KSA32", 5, 200}
	ckptIntervals := []int{0, 10, 100}
	if smoke {
		ckpt.circuit, ckpt.iters = "KSA4", 2
		ckptIntervals = []int{0, 1}
	}
	ckptDir, err := os.MkdirTemp("", "gpp-bench-ckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(ckptDir)
	snapPath := filepath.Join(ckptDir, "bench.snap")
	{
		p, err := perfProblem(ckpt.circuit, ckpt.k)
		if err != nil {
			return err
		}
		for _, every := range ckptIntervals {
			opts := partition.Options{
				Seed: 1, MaxIters: ckpt.iters, Margin: 1e-300, Workers: 1,
			}
			name := fmt.Sprintf("BenchmarkSolverCkpt%sOff", ckpt.circuit)
			if every > 0 {
				opts.CheckpointEvery = every
				opts.Checkpoint = func(s *partition.Snapshot) error {
					return store.WriteFileAtomic(snapPath, partition.EncodeSnapshot(s), 0o644)
				}
				name = fmt.Sprintf("BenchmarkSolverCkpt%sEvery%d", ckpt.circuit, every)
			}
			iters := 0
			op := func() {
				res, err := p.Solve(opts)
				if err != nil {
					panic(err)
				}
				iters = res.Iters
			}
			ops, ns, allocs, bytes := measureOp(op, budget, maxOps)
			b := perfBench{
				Name:    name,
				Circuit: ckpt.circuit, K: ckpt.k, Workers: 1,
				Ops: ops, NsPerOp: ns, ItersPerOp: iters,
				NsPerIter:   ns / float64(iters),
				AllocsPerOp: allocs, BytesPerOp: bytes,
			}
			series.Benchmarks = append(series.Benchmarks, b)
			fmt.Fprintf(os.Stderr, "perf: %-34s %12.0f ns/op %10.0f ns/iter %8.1f allocs/op\n",
				b.Name, b.NsPerOp, b.NsPerIter, b.AllocsPerOp)
		}
	}

	// Float32-tier cells: the same fixed-iteration solves on the opt-in
	// reduced-precision kernel (Options.Precision = Precision32). The
	// 200-iteration KSA32 cell compares against BenchmarkSolverCkptKSA32Off
	// and the par6000 cell against BenchmarkSolverpar6000K5W1 — identical
	// workloads on the float64 kernel.
	f32Cells := []struct {
		circuit string
		k       int
		iters   int
	}{
		{"KSA32", 5, 200},
		{"par6000", 5, 40},
	}
	if smoke {
		f32Cells = f32Cells[:0]
		f32Cells = append(f32Cells, struct {
			circuit string
			k       int
			iters   int
		}{"KSA4", 5, 2})
	}
	for _, fc := range f32Cells {
		p, err := perfProblem(fc.circuit, fc.k)
		if err != nil {
			return err
		}
		opts := partition.Options{
			Seed: 1, MaxIters: fc.iters, Margin: 1e-300, Workers: 1,
			Precision: partition.Precision32,
		}
		iters := 0
		op := func() {
			res, err := p.Solve(opts)
			if err != nil {
				panic(err)
			}
			iters = res.Iters
		}
		ops, ns, allocs, bytes := measureOp(op, budget, maxOps)
		b := perfBench{
			Name:    fmt.Sprintf("BenchmarkSolverF32%sK%dW1", fc.circuit, fc.k),
			Circuit: fc.circuit, K: fc.k, Workers: 1,
			Ops: ops, NsPerOp: ns, ItersPerOp: iters,
			NsPerIter:   ns / float64(iters),
			AllocsPerOp: allocs, BytesPerOp: bytes,
		}
		series.Benchmarks = append(series.Benchmarks, b)
		fmt.Fprintf(os.Stderr, "perf: %-34s %12.0f ns/op %10.0f ns/iter %8.1f allocs/op\n",
			b.Name, b.NsPerOp, b.NsPerIter, b.AllocsPerOp)
	}

	// Registry-kernel cells: the same fixed-iteration KSA32 solve on a
	// problem built through the cost-term registry. The Default cell spells
	// f1..f4 explicitly — it must compile to the historical kernel path, so
	// any gap against BenchmarkSolverCkptKSA32Off is pure registry build
	// overhead (amortized once per solve, never per iteration). The Plane
	// cell activates current_limit with a deliberately binding limit, so
	// its ns/iter prices the per-iteration plane-term finalize/gradient
	// hooks — the dispatch overhead the 10% bench gate now watches.
	regCells := []struct {
		name  string
		specs []partition.TermSpec
	}{
		{"Default", []partition.TermSpec{
			{Name: "f1", Weight: 1}, {Name: "f2", Weight: 1},
			{Name: "f3", Weight: 1}, {Name: "f4", Weight: 1},
		}},
		{"Plane", []partition.TermSpec{{Name: "current_limit", Weight: 1, Param: 10}}},
	}
	regWork := struct {
		circuit string
		k       int
		iters   int
	}{"KSA32", 5, 200}
	if smoke {
		regWork.circuit, regWork.iters = "KSA4", 2
	}
	for _, rc := range regCells {
		c, err := gen.Benchmark(regWork.circuit, nil)
		if err != nil {
			return err
		}
		opts := partition.Options{
			Seed: 1, MaxIters: regWork.iters, Margin: 1e-300, Workers: 1,
			Terms: rc.specs,
		}
		p, opts, err := terms.BuildProblem(c, regWork.k, opts, nil)
		if err != nil {
			return err
		}
		iters := 0
		op := func() {
			res, err := p.Solve(opts)
			if err != nil {
				panic(err)
			}
			iters = res.Iters
		}
		ops, ns, allocs, bytes := measureOp(op, budget, maxOps)
		b := perfBench{
			Name:    fmt.Sprintf("BenchmarkSolverRegistry%s%sW1", rc.name, regWork.circuit),
			Circuit: regWork.circuit, K: regWork.k, Workers: 1,
			Ops: ops, NsPerOp: ns, ItersPerOp: iters,
			NsPerIter:   ns / float64(iters),
			AllocsPerOp: allocs, BytesPerOp: bytes,
		}
		series.Benchmarks = append(series.Benchmarks, b)
		fmt.Fprintf(os.Stderr, "perf: %-34s %12.0f ns/op %10.0f ns/iter %8.1f allocs/op\n",
			b.Name, b.NsPerOp, b.NsPerIter, b.AllocsPerOp)
	}

	// Incremental-tier showcase: a partially-frozen descent (edge-free
	// zero-attribute tail that clamp-freezes at its one-hot vertices while
	// the edged core keeps moving — see the FuzzIncrementalParity topology)
	// where the planner's skip masks genuinely engage. The paired Off cell
	// is the identical solve with NoIncremental, so the gap prices exactly
	// what dirty-shard skipping buys in its favorable regime; on
	// random-init descents of real circuits every shard stays dirty and
	// the tier honestly buys nothing (DESIGN.md §15).
	{
		incrIters := 192
		if smoke {
			incrIters = 4
		}
		p, err := frozenTailProblem(768, 600, 4)
		if err != nil {
			return err
		}
		for _, noIncr := range []bool{false, true} {
			opts := partition.Options{
				Seed: 2, MaxIters: incrIters, Margin: 1e-300, Workers: 1,
				LearnRate: 2000, NoIncremental: noIncr,
			}
			name := "BenchmarkSolverIncrFrozenW1"
			if noIncr {
				name = "BenchmarkSolverIncrFrozenOffW1"
			}
			iters := 0
			op := func() {
				res, err := p.Solve(opts)
				if err != nil {
					panic(err)
				}
				iters = res.Iters
			}
			ops, ns, allocs, bytes := measureOp(op, budget, maxOps)
			b := perfBench{
				Name:    name,
				Circuit: "frozen768", K: 4, Workers: 1,
				Ops: ops, NsPerOp: ns, ItersPerOp: iters,
				NsPerIter:   ns / float64(iters),
				AllocsPerOp: allocs, BytesPerOp: bytes,
			}
			series.Benchmarks = append(series.Benchmarks, b)
			fmt.Fprintf(os.Stderr, "perf: %-34s %12.0f ns/op %10.0f ns/iter %8.1f allocs/op\n",
				b.Name, b.NsPerOp, b.NsPerIter, b.AllocsPerOp)
		}
	}

	// Multilevel V-cycle scale series: the million-gate acceptance path.
	// par6000 anchors the series to the flat solver's benchmark instance;
	// par100000 sweeps the worker counts (bitwise-identical outputs, so the
	// sweep prices dispatch overhead exactly like the flat-solver cells);
	// par1000000 runs once at full parallelism — wall time per op is the
	// headline number the README scale table quotes.
	mlCells := []struct {
		circuit string
		workers []int
		maxOps  int
	}{
		{"par6000", []int{1}, 3},
		{"par100000", perfWorkerSweep(), 3},
		{"par1000000", []int{runtime.NumCPU()}, 1},
	}
	if smoke {
		mlCells = mlCells[:0]
		mlCells = append(mlCells, struct {
			circuit string
			workers []int
			maxOps  int
		}{"KSA16", []int{1}, 1})
	}
	for _, mc := range mlCells {
		p, err := perfProblem(mc.circuit, 5)
		if err != nil {
			return err
		}
		for _, workers := range mc.workers {
			opts := multilevel.Options{}
			opts.Solver.Seed = 1
			opts.Solver.Workers = workers
			iters := 0
			op := func() {
				res, err := multilevel.Partition(p, opts)
				if err != nil {
					panic(err)
				}
				iters = res.Iters
			}
			ops, ns, allocs, bytes := measureOp(op, budget, mc.maxOps)
			b := perfBench{
				Name:    fmt.Sprintf("BenchmarkVCycle%sK5W%d", mc.circuit, workers),
				Circuit: mc.circuit, K: 5, Workers: workers,
				Ops: ops, NsPerOp: ns, ItersPerOp: iters,
				NsPerIter:   ns / float64(iters),
				AllocsPerOp: allocs, BytesPerOp: bytes,
			}
			series.Benchmarks = append(series.Benchmarks, b)
			fmt.Fprintf(os.Stderr, "perf: %-34s %12.0f ns/op %10.0f ns/iter %8.1f allocs/op\n",
				b.Name, b.NsPerOp, b.NsPerIter, b.AllocsPerOp)
		}
	}

	for _, circuit := range costGradCircuits {
		p, err := perfProblem(circuit, 5)
		if err != nil {
			return err
		}
		w := p.NewW()
		for i := range w {
			w[i] = 1.0 / 5
		}
		grad := make([]float64, len(w))
		coeffs := partition.DefaultCoeffs()
		for _, workers := range perfWorkerSweep() {
			workers := workers
			op := func() {
				_ = p.CostParallel(w, coeffs, workers)
				p.GradientParallel(w, coeffs, partition.GradientExact, grad, workers)
			}
			ops, ns, allocs, bytes := measureOp(op, budget, maxOps)
			b := perfBench{
				Name:    fmt.Sprintf("BenchmarkCostGradient%sW%d", circuit, workers),
				Circuit: circuit, K: 5, Workers: workers,
				Ops: ops, NsPerOp: ns, ItersPerOp: 1, NsPerIter: ns,
				AllocsPerOp: allocs, BytesPerOp: bytes,
			}
			series.Benchmarks = append(series.Benchmarks, b)
			fmt.Fprintf(os.Stderr, "perf: %-34s %12.0f ns/op %10.0f ns/iter %8.1f allocs/op\n",
				b.Name, b.NsPerOp, b.NsPerIter, b.AllocsPerOp)
		}
	}

	file := perfFile{
		Schema: perfSchema,
		Note: "Solver hot-path perf trajectory. One series per measured commit; " +
			"ns_per_iter = ns_per_op / solver iterations per op (fixed-iteration solves).",
	}
	if appendSeries {
		if raw, err := os.ReadFile(out); err == nil {
			var existing perfFile
			if err := json.Unmarshal(raw, &existing); err != nil {
				return fmt.Errorf("perf: cannot append to %s: %w", out, err)
			}
			file.Series = existing.Series
			if existing.Note != "" {
				file.Note = existing.Note
			}
		}
	}
	// Re-running a label replaces that series in place (same position), so
	// iterating on a measurement never duplicates history.
	replaced := false
	for i := range file.Series {
		if file.Series[i].Label == label {
			file.Series[i] = series
			replaced = true
			break
		}
	}
	if !replaced {
		file.Series = append(file.Series, series)
	}

	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}
