// Command gpp-bench regenerates the paper's evaluation tables (and the
// repository's extra ablations) and prints them side by side with the
// published numbers.
//
// Usage:
//
//	gpp-bench -table 1            # Table I: suite at K=5
//	gpp-bench -table 2            # Table II: KSA4, K=5..10
//	gpp-bench -table 3            # Table III: 100 mA supply limit
//	gpp-bench -table ablation     # baselines + gradient-mode ablations
//	gpp-bench -table extended     # frequency penalty, power economics, seeds, rounding
//	gpp-bench -table tune         # grid-search the cost coefficients
//	gpp-bench -table all          # everything
//	gpp-bench -table 1 -csv       # CSV instead of aligned text
//	gpp-bench -table 1 -md        # Markdown tables
//	gpp-bench -table 1 -json      # machine-readable JSON
//	gpp-bench -table 1 -restarts 8   # best-of-8 restart race per solve
//	gpp-bench -table 1 -workers 4    # sharded kernels (identical results)
//	gpp-bench -table 1 -trace t1.jsonl -manifest t1.json   # telemetry artifacts
//	gpp-bench -table all -metrics-addr :8080               # live /metrics + pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpp/internal/experiments"
	"gpp/internal/obs/obscli"
	"gpp/internal/report"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 3, ablation, all")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.Bool("json", false, "emit JSON instead of aligned text")
	md := flag.Bool("md", false, "emit Markdown tables instead of aligned text")
	limit := flag.Float64("limit", 100, "supply-current limit in mA for table 3")
	seed := flag.Int64("seed", 1, "solver random seed")
	workers := flag.Int("workers", 1, "kernel worker goroutines per solve (0 = one per CPU); results are identical for every count")
	restarts := flag.Int("restarts", 1, "random restarts per solve; the best discrete-cost result is kept")
	perf := flag.Bool("perf", false, "run the solver perf harness instead of the tables and write a perf-trajectory JSON (see -perf-out)")
	perfOut := flag.String("perf-out", "BENCH_PR6.json", "perf-trajectory output file (\"-\" for stdout)")
	perfLabel := flag.String("perf-label", "head", "series label recorded in the trajectory file")
	perfAppend := flag.Bool("perf-append", false, "append to / replace within an existing trajectory file instead of overwriting it")
	perfSmoke := flag.Bool("perf-smoke", false, "one-op smoke run on a tiny circuit (keeps the harness wired into make check)")
	perfTime := flag.Duration("perf-benchtime", time.Second, "minimum measurement time per benchmark cell")
	flag.IntVar(&perfRepeat, "perf-repeat", 1, "independent measurement windows per cell; the median ns/op window is recorded (raise on noisy shared hosts)")
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	if *perf {
		if err := runPerf(*perfOut, *perfLabel, *perfAppend, *perfSmoke, *perfTime); err != nil {
			fatal(err)
		}
		return
	}

	sess, err := obsFlags.Start("gpp-bench")
	if err != nil {
		fatal(err)
	}
	cleanup = sess.Close
	sess.Meta("table", *table)
	sess.Meta("seed", *seed)
	sess.Meta("restarts", *restarts)
	sess.Meta("workers", *workers)

	cfg := experiments.Config{Parallel: true}
	cfg.Solver.Seed = *seed
	cfg.Solver.Workers = *workers
	cfg.Restarts = *restarts
	if sess.Tracer != nil {
		// Tracing forces serial per-circuit solves: concurrent circuits
		// would interleave their events in the shared sink, and the whole
		// point of the trace is a deterministic, diffable stream.
		cfg.Parallel = false
		cfg.Solver.Tracer = sess.Tracer
	}

	emit := func(t *report.Table) {
		var err error
		if *jsonOut {
			err = t.WriteJSON(os.Stdout)
		} else if *md {
			err = t.WriteMarkdown(os.Stdout)
			fmt.Println()
		} else if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteText(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}

	run1 := func() {
		rows, err := experiments.TableI(cfg)
		if err != nil {
			fatal(err)
		}
		emit(tableI(rows))
	}
	run2 := func() {
		rows, err := experiments.TableII(cfg)
		if err != nil {
			fatal(err)
		}
		emit(tableII(rows))
	}
	run3 := func() {
		rows, err := experiments.TableIII(cfg, *limit)
		if err != nil {
			fatal(err)
		}
		emit(tableIII(rows, *limit))
	}
	runExt := func() {
		freq, err := experiments.FrequencyPenalty("KSA16", []int{2, 3, 5, 8}, cfg)
		if err != nil {
			fatal(err)
		}
		ft := &report.Table{
			Title:   "Extended: operating-frequency penalty of partitioning (KSA16)",
			Columns: []string{"K", "f_base(GHz)", "f_part(GHz)", "ratio", "crossings", "+latency(ps)"},
		}
		for _, r := range freq {
			ft.MustAddRow(fmt.Sprint(r.K), report.F(r.BaseFreqGHz, 2), report.F(r.PartFreqGHz, 2),
				report.F(r.FreqRatio, 3), fmt.Sprint(r.Crossings), report.F(r.AddedLatencyPS, 1))
		}
		emit(ft)

		pow, err := experiments.PowerComparison([]string{"KSA16", "KSA32", "C3540"}, 5, 100, cfg)
		if err != nil {
			fatal(err)
		}
		pt := &report.Table{
			Title:   "Extended: supply economics at K=5 (100 mA pads)",
			Columns: []string{"Circuit", "I-parallel(A)", "I-recycled(A)", "I÷", "lead-loss÷", "pads before", "pads after"},
		}
		for _, r := range pow {
			pt.MustAddRow(r.Circuit, report.F(r.ParallelSupplyA, 3), report.F(r.RecycledSupplyA, 3),
				report.F(r.CurrentReduction, 2), report.F(r.LeadLossReduction, 2),
				fmt.Sprint(r.BiasLinesBefore), fmt.Sprint(r.BiasLinesAfter))
		}
		emit(pt)

		seeds, err := experiments.SeedSensitivity("KSA8", 5, 5, cfg)
		if err != nil {
			fatal(err)
		}
		st := &report.Table{
			Title:   "Extended: seed sensitivity (KSA8, K=5, 5 seeds)",
			Columns: []string{"d<=1 mean", "d<=1 std", "Icomp mean", "Icomp std", "best cost", "worst cost"},
		}
		st.MustAddRow(report.Pct(seeds.MeanDLE1), report.F(seeds.StdDLE1, 2),
			report.Pct(seeds.MeanIComp), report.F(seeds.StdIComp, 2),
			report.F(seeds.BestCost, 5), report.F(seeds.WorstCost, 5))
		emit(st)

		topo, err := experiments.AdderTopologies(16, 5, cfg)
		if err != nil {
			fatal(err)
		}
		tt := &report.Table{
			Title:   "Extended: adder topology vs partitionability (16-bit, K=5)",
			Columns: []string{"Topology", "Gates", "Conns", "Depth", "d<=1", "d<=2", "Icomp%"},
		}
		for _, r := range topo {
			tt.MustAddRow(r.Topology, fmt.Sprint(r.Gates), fmt.Sprint(r.Conns), fmt.Sprint(r.Depth),
				report.Pct(r.DLE1Pct), report.Pct(r.DLE2Pct), report.F(r.ICompPct, 2))
		}
		emit(tt)

		cong, err := experiments.Congestion("KSA16", []int{2, 5, 8}, cfg)
		if err != nil {
			fatal(err)
		}
		ct := &report.Table{
			Title:   "Extended: boundary-channel congestion (KSA16, left-edge router)",
			Columns: []string{"K", "crossings", "max tracks", "channel wire (mm)"},
		}
		for _, r := range cong {
			ct.MustAddRow(fmt.Sprint(r.K), fmt.Sprint(r.Crossings), fmt.Sprint(r.MaxTracks), report.F(r.TotalWireMM, 1))
		}
		emit(ct)

		round, err := experiments.AblationRounding("KSA16", 5, 0.05, cfg)
		if err != nil {
			fatal(err)
		}
		rt := &report.Table{
			Title:   "Extended: rounding ablation (KSA16, K=5, 5% slack)",
			Columns: []string{"Method", "d<=1", "Bmax(mA)", "Icomp%"},
		}
		for _, r := range round {
			rt.MustAddRow(r.Method, report.Pct(r.DLE1Pct), report.F(r.BMax, 2), report.F(r.ICompPct, 2))
		}
		emit(rt)
	}

	runTune := func() {
		all, best, err := experiments.TuneCoefficients("KSA8", 5, experiments.TuneOptions{Seed: *seed}, cfg)
		if err != nil {
			fatal(err)
		}
		tt := &report.Table{
			Title:   "Coefficient tuning on KSA8, K=5 (score = (100−d≤1) + Icomp + AFS, lower is better)",
			Columns: []string{"c1", "c2=c3", "c4", "d<=1", "Icomp%", "AFS%", "score"},
		}
		for _, r := range all {
			tt.MustAddRow(report.F(r.Coeffs.C1, 2), report.F(r.Coeffs.C2, 2), report.F(r.Coeffs.C4, 2),
				report.Pct(r.DLE1Pct), report.F(r.ICompPct, 2), report.F(r.AFSPct, 2), report.F(r.Score, 2))
		}
		emit(tt)
		fmt.Printf("best: c=(%.2g, %.2g, %.2g, %.2g) score %.2f\n\n",
			best.Coeffs.C1, best.Coeffs.C2, best.Coeffs.C3, best.Coeffs.C4, best.Score)
	}

	runAbl := func() {
		for _, name := range []string{"KSA8", "C432"} {
			rows, err := experiments.AblationBaselines(name, 5, cfg)
			if err != nil {
				fatal(err)
			}
			emit(ablationTable(fmt.Sprintf("Ablation: methods on %s, K=5", name), rows))
		}
		rows, err := experiments.AblationGradients("KSA8", 5, cfg)
		if err != nil {
			fatal(err)
		}
		emit(ablationTable("Ablation: gradient modes on KSA8, K=5", rows))
	}

	switch *table {
	case "1":
		run1()
	case "2":
		run2()
	case "3":
		run3()
	case "ablation":
		runAbl()
	case "extended":
		runExt()
	case "tune":
		runTune()
	case "all":
		run1()
		run2()
		run3()
		runAbl()
		runExt()
	default:
		fatal(fmt.Errorf("unknown -table %q (want 1, 2, 3, ablation, extended, tune, all)", *table))
	}

	if err := sess.Close(); err != nil {
		cleanup = nil
		fatal(err)
	}
}

// tableI renders measured rows beside the published Table I values
// ("paper" columns show the DATE 2020 numbers).
func tableI(rows []experiments.Row) *report.Table {
	t := &report.Table{
		Title: "Table I — Partition results of benchmark circuits with K = 5 (measured vs paper)",
		Columns: []string{
			"Circuit", "Gates", "Conns",
			"d<=1", "d<=1(p)", "d<=2", "d<=2(p)",
			"Bcir(mA)", "Bmax(mA)", "Icomp%", "Icomp%(p)",
			"Acir(mm2)", "Amax(mm2)", "AFS%", "AFS%(p)",
		},
	}
	var d1, d2, ic, af float64
	for _, r := range rows {
		p, _ := experiments.FindPaperRow(experiments.PaperTableI, r.Circuit, 0)
		t.MustAddRow(
			r.Circuit,
			fmt.Sprint(r.Gates), fmt.Sprint(r.Conns),
			report.Pct(r.DLE1Pct), report.Pct(p.DLE1Pct),
			report.Pct(r.DLE2Pct), report.Pct(p.DLE2Pct),
			report.F(r.BCir, 2), report.F(r.BMax, 2),
			report.F(r.ICompPct, 2), report.F(p.ICompPct, 2),
			report.F(r.ACir, 4), report.F(r.AMax, 4),
			report.F(r.AFSPct, 2), report.F(p.AFSPct, 2),
		)
		d1 += r.DLE1Pct
		d2 += r.DLE2Pct
		ic += r.ICompPct
		af += r.AFSPct
	}
	n := float64(len(rows))
	t.MustAddRow("AVG", "", "",
		report.Pct(d1/n), report.Pct(experiments.PaperAverages.DLE1Pct),
		report.Pct(d2/n), report.Pct(experiments.PaperAverages.DLE2Pct),
		"", "",
		report.F(ic/n, 2), report.F(experiments.PaperAverages.ICompPct, 2),
		"", "",
		report.F(af/n, 2), report.F(experiments.PaperAverages.AFSPct, 2),
	)
	return t
}

func tableII(rows []experiments.Row) *report.Table {
	t := &report.Table{
		Title: "Table II — KSA4 partitions for K = 5..10 (measured vs paper)",
		Columns: []string{
			"K", "d<=1", "d<=1(p)", "d<=K/2", "d<=K/2(p)",
			"Bmax(mA)", "Icomp%", "Icomp%(p)", "Amax(mm2)", "AFS%", "AFS%(p)",
		},
	}
	for _, r := range rows {
		p, _ := experiments.FindPaperRow(experiments.PaperTableII, "KSA4", r.K)
		t.MustAddRow(
			fmt.Sprint(r.K),
			report.Pct(r.DLE1Pct), report.Pct(p.DLE1Pct),
			report.Pct(r.DHalfPct), report.Pct(p.DHalfPct),
			report.F(r.BMax, 2),
			report.F(r.ICompPct, 2), report.F(p.ICompPct, 2),
			report.F(r.AMax, 4),
			report.F(r.AFSPct, 2), report.F(p.AFSPct, 2),
		)
	}
	return t
}

func tableIII(rows []experiments.TableIIIRow, limit float64) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Table III — Partition results for %.0f mA maximum supplied current (measured vs paper)", limit),
		Columns: []string{
			"Circuit", "KLB/KRes", "KLB/KRes(p)", "d<=K/2", "d<=K/2(p)",
			"Bmax(mA)", "Icomp%", "Icomp%(p)", "Amax(mm2)", "AFS%", "AFS%(p)",
		},
	}
	for _, r := range rows {
		p, _ := experiments.FindPaperRow(experiments.PaperTableIII, r.Circuit, 0)
		t.MustAddRow(
			r.Circuit,
			fmt.Sprintf("%d/%d", r.KLB, r.KRes),
			fmt.Sprintf("%d/%d", p.KLB, p.KRes),
			report.Pct(r.DHalfPct), report.Pct(p.DHalfPct),
			report.F(r.BMax, 2),
			report.F(r.ICompPct, 2), report.F(p.ICompPct, 2),
			report.F(r.AMax, 4),
			report.F(r.AFSPct, 2), report.F(p.AFSPct, 2),
		)
	}
	return t
}

func ablationTable(title string, rows []experiments.MethodResult) *report.Table {
	t := &report.Table{
		Title:   title,
		Columns: []string{"Method", "d<=1", "d<=K/2", "Icomp%", "AFS%", "Cost"},
	}
	for _, r := range rows {
		t.MustAddRow(r.Method, report.Pct(r.DLE1Pct), report.Pct(r.DHalfPct),
			report.F(r.ICompPct, 2), report.F(r.AFSPct, 2), report.F(r.Cost, 5))
	}
	return t
}

// cleanup, when set, flushes the telemetry session so traces and manifests
// survive error exits too.
var cleanup func() error

func fatal(err error) {
	if cleanup != nil {
		if cerr := cleanup(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gpp-bench:", cerr)
		}
	}
	fmt.Fprintln(os.Stderr, "gpp-bench:", err)
	os.Exit(1)
}
