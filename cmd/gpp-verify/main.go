// Command gpp-verify independently checks a ground-plane partition: it
// reads a netlist (DEF or generated benchmark) plus an assignment (TSV
// from gpp-partition -assign, or plane GROUPS inside a placed DEF), then
// recomputes every metric and recycling-plan property from scratch and
// reports discrepancies. Exit status 0 means the partition is sound.
//
// Usage:
//
//	gpp-verify -circuit KSA8 -assign planes.tsv [-limit 100]
//	gpp-verify -def design.def -lef cells.lef -groups-def placed.def
package main

import (
	"flag"
	"fmt"
	"os"

	"gpp/internal/assignio"
	"gpp/internal/cellib"
	"gpp/internal/def"
	"gpp/internal/gen"
	"gpp/internal/lef"
	"gpp/internal/netlist"
	"gpp/internal/partition"
	"gpp/internal/recycle"
	"gpp/internal/verif"
)

func main() {
	defPath := flag.String("def", "", "input DEF netlist")
	lefPath := flag.String("lef", "", "LEF cell library for -def")
	circuit := flag.String("circuit", "", "generate a benchmark instead of reading DEF")
	assign := flag.String("assign", "", "gate→plane TSV (as written by gpp-partition -assign)")
	groupsDEF := flag.String("groups-def", "", "placed DEF with plane_<k> GROUPS (as written by gpp-partition -placed-def)")
	limit := flag.Float64("limit", 0, "if > 0, enforce this per-plane supply limit (mA)")
	flag.Parse()

	c, err := loadCircuit(*defPath, *lefPath, *circuit)
	if err != nil {
		fatal(err)
	}

	var labels []int
	var k int
	switch {
	case *assign != "" && *groupsDEF != "":
		fatal(fmt.Errorf("use either -assign or -groups-def, not both"))
	case *assign != "":
		labels, k, err = readAssign(*assign, c)
	case *groupsDEF != "":
		labels, k, err = readGroups(*groupsDEF, c)
	default:
		fatal(fmt.Errorf("need -assign or -groups-def (see -h)"))
	}
	if err != nil {
		fatal(err)
	}

	issues := verif.Partition(c, k, labels, *limit)
	if len(issues) == 0 {
		// Deep checks need a valid labeling, so only run them when the
		// surface checks pass.
		p, err := partition.FromCircuit(c, k)
		if err != nil {
			fatal(err)
		}
		m, err := recycle.Evaluate(p, labels)
		if err != nil {
			fatal(err)
		}
		issues = append(issues, verif.Metrics(c, labels, m)...)
		plan, err := recycle.BuildPlan(c, p, labels, recycle.PlanOptions{})
		if err != nil {
			fatal(err)
		}
		issues = append(issues, verif.Plan(c, labels, plan)...)
		if len(issues) == 0 {
			fmt.Printf("%s: partition into %d planes verified: d≤1 %.1f%%, B_max %.2f mA, I_comp %.2f%%, A_FS %.2f%%\n",
				c.Name, k, m.DistLEPct(1), m.BMax, m.ICompPct, m.AFreePct)
			return
		}
	}
	for _, is := range issues {
		fmt.Fprintln(os.Stderr, "FAIL:", is)
	}
	os.Exit(1)
}

func loadCircuit(defPath, lefPath, circuit string) (*netlist.Circuit, error) {
	switch {
	case circuit != "" && defPath != "":
		return nil, fmt.Errorf("use either -def or -circuit, not both")
	case circuit != "":
		return gen.Benchmark(circuit, nil)
	case defPath != "":
		lib := cellib.Default()
		if lefPath != "" {
			f, err := os.Open(lefPath)
			if err != nil {
				return nil, err
			}
			macros, err := lef.Parse(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			lib, err = lef.ToLibrary("user", macros)
			if err != nil {
				return nil, err
			}
		}
		f, err := os.Open(defPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		d, err := def.Parse(f)
		if err != nil {
			return nil, err
		}
		return def.ToCircuit(d, lib)
	default:
		return nil, fmt.Errorf("need -def or -circuit")
	}
}

// readAssign parses the TSV written by gpp-partition.
func readAssign(path string, c *netlist.Circuit) ([]int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return assignio.Read(f, c)
}

func readGroups(path string, c *netlist.Circuit) ([]int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	_, groups, err := def.ParseRegionsGroups(f)
	if err != nil {
		return nil, 0, err
	}
	return def.LabelsFromGroups(c, groups)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpp-verify:", err)
	os.Exit(1)
}
