// bench.go implements `gpp-inspect bench`: the perf-trajectory digest and
// regression gate. It reads the merged BENCH.json ledger plus every
// BENCH_*.json file (the series gpp-bench -perf appends, one labelled
// series per measured commit), merges them into one per-benchmark trend
// table ordered by measurement date — a series appearing in both the
// ledger and a per-PR file counts once, keyed by (label, date) — and
// compares the latest point against its baseline. Any benchmark whose
// ns/iter or allocs/op grew by more than the threshold (default 10%) makes
// the command exit non-zero — `make bench-smoke` runs it over the
// committed files, so a PR that appends a regressed series fails CI
// deterministically.
//
// A regression means the latest point is worse than BOTH the previous
// point and the median of the prior ≤3 points. Requiring both makes the
// gate a "this series made it worse" detector that is robust from either
// direction: one outlier-fast previous point does not gate every honest
// successor forever (the median check forgives a reversion to the
// historical band), and a regression an already-merged series shipped is
// not re-charged to the next one (the previous-point check sees no new
// growth). A genuine new slowdown exceeds both and still trips.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// benchFile mirrors the gpp-bench-perf/v1 schema (cmd/gpp-bench/perf.go).
type benchFile struct {
	Schema string        `json:"schema"`
	Series []benchSeries `json:"series"`
}

type benchSeries struct {
	Label      string       `json:"label"`
	Date       string       `json:"date"` // RFC 3339; lexical order = time order
	Smoke      bool         `json:"smoke,omitempty"`
	Benchmarks []benchPoint `json:"benchmarks"`
}

type benchPoint struct {
	Name        string  `json:"name"`
	Circuit     string  `json:"circuit"`
	K           int     `json:"k"`
	Workers     int     `json:"workers"`
	NsPerIter   float64 `json:"ns_per_iter"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchTrend is one benchmark's measurements across series, oldest first.
type benchTrend struct {
	name   string
	points []trendPoint
}

type trendPoint struct {
	label  string
	ns     float64
	allocs float64
}

// runBench implements `gpp-inspect bench [-threshold F] [files...]`.
func runBench(args []string) {
	fs := flag.NewFlagSet("gpp-inspect bench", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10,
		"fail when the latest ns/iter or allocs/op exceeds both the previous point and the median of the prior ≤3 points by more than this fraction")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gpp-inspect bench [-threshold 0.10] [BENCH_*.json ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	files := fs.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			fatal(err)
		}
		sort.Strings(files)
		// The append-only ledger, when present, is read first so its copy
		// of each series wins the (label, date) dedupe; repos that carry
		// only the ledger — or only per-PR files — both work.
		if _, err := os.Stat("BENCH.json"); err == nil {
			files = append([]string{"BENCH.json"}, files...)
		}
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("bench: no BENCH.json or BENCH_*.json files found (run gpp-bench -perf first)"))
	}
	trends, err := loadTrends(files)
	if err != nil {
		fatal(err)
	}
	regressions := writeTrends(os.Stdout, trends, *threshold)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "gpp-inspect: bench: %d regression(s) beyond %.0f%% over the recent baseline\n",
			regressions, *threshold*100)
		os.Exit(1)
	}
}

// loadTrends merges the series of every file into per-benchmark trends,
// series ordered by date. Smoke series are skipped: their one-op
// measurements exist to prove the harness runs, not to be compared. A
// series present in several files — the merged BENCH.json ledger also
// keeps the per-PR BENCH_PRn.json it came from — is deduplicated by
// (label, date), first file listed wins.
func loadTrends(files []string) ([]benchTrend, error) {
	var series []benchSeries
	seen := map[[2]string]bool{}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var bf benchFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", path, err)
		}
		if bf.Schema != "gpp-bench-perf/v1" {
			return nil, fmt.Errorf("bench: %s: unknown schema %q", path, bf.Schema)
		}
		for _, s := range bf.Series {
			key := [2]string{s.Label, s.Date}
			if s.Smoke || seen[key] {
				continue
			}
			seen[key] = true
			series = append(series, s)
		}
	}
	sort.SliceStable(series, func(i, j int) bool { return series[i].Date < series[j].Date })
	index := map[string]int{}
	var trends []benchTrend
	for _, s := range series {
		for _, b := range s.Benchmarks {
			i, ok := index[b.Name]
			if !ok {
				i = len(trends)
				index[b.Name] = i
				trends = append(trends, benchTrend{name: b.Name})
			}
			trends[i].points = append(trends[i].points, trendPoint{
				label: s.Label, ns: b.NsPerIter, allocs: b.AllocsPerOp,
			})
		}
	}
	return trends, nil
}

// writeTrends prints the trend table and returns how many benchmarks
// regressed beyond threshold between their latest two points.
func writeTrends(w io.Writer, trends []benchTrend, threshold float64) int {
	regressions := 0
	for _, t := range trends {
		fmt.Fprintf(w, "%s\n", t.name)
		fmt.Fprintf(w, "  %-20s %12s %8s %12s %8s\n", "series", "ns/iter", "Δ", "allocs/op", "Δ")
		for i, p := range t.points {
			nsDelta, allocDelta := "—", "—"
			if i > 0 {
				nsDelta = pctDelta(t.points[i-1].ns, p.ns)
				allocDelta = pctDelta(t.points[i-1].allocs, p.allocs)
			}
			fmt.Fprintf(w, "  %-20s %12.0f %8s %12.1f %8s\n", p.label, p.ns, nsDelta, p.allocs, allocDelta)
		}
		if n := len(t.points); n >= 2 {
			last, prev := t.points[n-1], t.points[n-2]
			prior := t.points[max(0, n-4) : n-1]
			baseNs := medianOf(prior, func(p trendPoint) float64 { return p.ns })
			baseAllocs := medianOf(prior, func(p trendPoint) float64 { return p.allocs })
			bad := ""
			if regressed(prev.ns, last.ns, threshold) && regressed(baseNs, last.ns, threshold) {
				bad = fmt.Sprintf("ns/iter (%.0f vs %.0f prev, %.0f median)", last.ns, prev.ns, baseNs)
			}
			if regressed(prev.allocs, last.allocs, threshold) && regressed(baseAllocs, last.allocs, threshold) {
				if bad != "" {
					bad += ", "
				}
				bad += fmt.Sprintf("allocs/op (%.1f vs %.1f prev, %.1f median)", last.allocs, prev.allocs, baseAllocs)
			}
			if bad != "" {
				regressions++
				fmt.Fprintf(w, "  REGRESSION: %s up >%.0f%% at %s\n", bad, threshold*100, last.label)
			}
		}
		fmt.Fprintln(w)
	}
	return regressions
}

// regressed reports whether cur exceeds base by more than threshold.
// A zero or negative baseline cannot regress (nothing to compare against —
// first measurements of a new benchmark).
func regressed(base, cur, threshold float64) bool {
	return base > 0 && cur > base*(1+threshold)
}

// medianOf extracts a metric from each point and returns its median
// (average of the middle pair for an even count; 0 for no points).
func medianOf(pts []trendPoint, metric func(trendPoint) float64) float64 {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = metric(p)
	}
	sort.Float64s(vals)
	switch n := len(vals); {
	case n == 0:
		return 0
	case n%2 == 1:
		return vals[n/2]
	default:
		return (vals[n/2-1] + vals[n/2]) / 2
	}
}

func pctDelta(prev, cur float64) string {
	if prev <= 0 {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", (cur/prev-1)*100)
}
