package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"gpp/internal/sweep"
)

// runSweep renders a saved sweep document (gpp-sweep -json, or a GET
// /v1/sweeps/{id} body piped to a file) as the ranked scenario table.
func runSweep(args []string) {
	fs := flag.NewFlagSet("gpp-inspect sweep", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gpp-inspect sweep sweep.json   (\"-\" = stdin)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		fatal(err)
	}
	var doc sweep.Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		fatal(fmt.Errorf("sweep %s: %v", path, err))
	}
	sweep.RenderTable(os.Stdout, &doc)
}
