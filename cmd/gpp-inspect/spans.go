// spans.go implements `gpp-inspect spans`: the span-waterfall view over a
// JSONL trace. Span events (written by the tools' -spans flags or captured
// from a gpp-serve job profile) reconstruct into parent/child trees; timed
// traces additionally render proportional duration bars, so one glance
// shows where a job's wall time went.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpp/internal/obs"
)

// runSpans implements `gpp-inspect spans <trace.jsonl>`.
func runSpans(args []string) {
	fs := flag.NewFlagSet("gpp-inspect spans", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gpp-inspect spans <trace.jsonl>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	roots := obs.BuildSpanTree(events)
	if len(roots) == 0 {
		fatal(fmt.Errorf("spans: no span events in %s (trace written without -spans?)", fs.Arg(0)))
	}
	obs.WriteWaterfall(os.Stdout, roots)
}
