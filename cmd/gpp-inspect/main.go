// Command gpp-inspect prints structural statistics of an SFQ netlist: gate
// and connection counts, bias/area totals, degree and cell-kind
// distributions, and logical depth — the inputs the partitioning cost
// function sees.
//
// The `trace` subcommand digests a JSONL solver trace (written by the other
// tools' -trace flag) into per-term convergence tables and, for portfolio
// runs, a restart leaderboard. The `spans` subcommand renders a trace's
// span events as an indented waterfall (add -spans to the producing tool,
// or fetch a gpp-serve job profile). The `bench` subcommand merges the
// BENCH_*.json perf-trajectory files into one trend table and exits
// non-zero when the latest series regresses more than 10% over the
// previous one — the CI perf gate. The `sweep` subcommand renders a saved
// sweep document (gpp-sweep -json, or a GET /v1/sweeps/{id} body) as the
// ranked scenario table.
//
// Usage:
//
//	gpp-inspect -circuit KSA16
//	gpp-inspect -def design.def [-lef cells.lef]
//	gpp-inspect trace run.jsonl
//	gpp-inspect trace -rows 20 run.jsonl
//	gpp-inspect spans run.jsonl
//	gpp-inspect bench
//	gpp-inspect bench -threshold 0.05 BENCH_PR6.json
//	gpp-inspect sweep sweep.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gpp/internal/cellib"
	"gpp/internal/def"
	"gpp/internal/gen"
	"gpp/internal/lef"
	"gpp/internal/netlist"
	"gpp/internal/obs"
	"gpp/internal/recycle"
	"gpp/internal/timing"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			runTrace(os.Args[2:])
			return
		case "spans":
			runSpans(os.Args[2:])
			return
		case "bench":
			runBench(os.Args[2:])
			return
		case "sweep":
			runSweep(os.Args[2:])
			return
		}
	}
	defPath := flag.String("def", "", "input DEF netlist")
	lefPath := flag.String("lef", "", "LEF cell library for -def")
	circuit := flag.String("circuit", "", "generate a benchmark instead of reading DEF")
	showTiming := flag.Bool("timing", true, "include stage-delay timing summary")
	flag.Parse()

	c, err := load(*defPath, *lefPath, *circuit)
	if err != nil {
		fatal(err)
	}
	st := netlist.ComputeStats(c)
	fmt.Printf("circuit:      %s\n", st.Name)
	fmt.Printf("gates:        %d\n", st.Gates)
	fmt.Printf("connections:  %d (%.2f per gate)\n", st.Edges, float64(st.Edges)/float64(st.Gates))
	fmt.Printf("bias:         %.3f mA total, %.3f mA/gate\n", st.TotalBias, st.AvgBias)
	fmt.Printf("area:         %.4f mm² total, %.5f mm²/gate\n", st.TotalArea, st.AvgArea)
	fmt.Printf("max fanin:    %d\n", st.MaxFanin)
	fmt.Printf("max fanout:   %d\n", st.MaxFanout)
	fmt.Printf("logic depth:  %d\n", st.Levels)
	fmt.Printf("acyclic:      %v\n", c.IsDAG())

	counts := map[string]int{}
	for _, g := range c.Gates {
		counts[g.Cell]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("cells:")
	for _, n := range names {
		fmt.Printf("  %-8s %d\n", n, counts[n])
	}

	if jj, err := recycle.CountJJs(c, make([]int, c.NumGates()), nil, nil); err == nil {
		fmt.Printf("JJs:          %d total (%.1f per gate)\n", jj.Total, float64(jj.Total)/float64(c.NumGates()))
	}
	if *showTiming {
		if an, err := timing.Analyze(c, timing.Options{}); err == nil {
			fmt.Printf("timing:       %d stages, critical %.1f ps → f_max %.2f GHz, latency %.1f ps\n",
				an.Stages, an.CriticalStagePS, an.MaxFreqGHz, an.TotalLatencyPS)
		}
	}
}

// runTrace implements `gpp-inspect trace [-rows N] <trace.jsonl>`.
func runTrace(args []string) {
	fs := flag.NewFlagSet("gpp-inspect trace", flag.ExitOnError)
	rows := fs.Int("rows", 12, "max iteration rows per solve's convergence table")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gpp-inspect trace [-rows N] <trace.jsonl>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	if err := obs.Summarize(events).WriteText(os.Stdout, *rows); err != nil {
		fatal(err)
	}
}

func load(defPath, lefPath, circuit string) (*netlist.Circuit, error) {
	switch {
	case circuit != "" && defPath != "":
		return nil, fmt.Errorf("use either -def or -circuit, not both")
	case circuit != "":
		return gen.Benchmark(circuit, nil)
	case defPath != "":
		lib := cellib.Default()
		if lefPath != "" {
			f, err := os.Open(lefPath)
			if err != nil {
				return nil, err
			}
			macros, err := lef.Parse(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			lib, err = lef.ToLibrary("user", macros)
			if err != nil {
				return nil, err
			}
		}
		f, err := os.Open(defPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		d, err := def.Parse(f)
		if err != nil {
			return nil, err
		}
		return def.ToCircuit(d, lib)
	default:
		return nil, fmt.Errorf("need -def or -circuit (see -h)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpp-inspect:", err)
	os.Exit(1)
}
