package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// trendOf builds a single-benchmark trend from a ns/iter history (allocs
// held constant).
func trendOf(ns ...float64) []benchTrend {
	t := benchTrend{name: "BenchmarkX"}
	for i, v := range ns {
		t.points = append(t.points, trendPoint{label: string(rune('a' + i)), ns: v, allocs: 10})
	}
	return []benchTrend{t}
}

func gateCount(t *testing.T, trends []benchTrend) int {
	t.Helper()
	var sb strings.Builder
	return writeTrends(&sb, trends, 0.10)
}

func TestBenchGate(t *testing.T) {
	cases := []struct {
		name string
		ns   []float64
		want int
	}{
		// A new slowdown above both the previous point and the recent
		// median trips the gate.
		{"real regression", []float64{100, 102, 98, 130}, 1},
		{"flat trend", []float64{100, 102, 98, 101}, 0},
		{"improvement", []float64{100, 90, 80, 70}, 0},
		// One outlier-fast previous point must not gate an honest
		// successor that reverts to the historical band.
		{"outlier-fast prev forgiven", []float64{100, 105, 60, 102}, 0},
		// A regression an earlier series shipped is not re-charged to the
		// next one that merely matches it.
		{"inherited regression forgiven", []float64{100, 130, 131}, 0},
		// But continuing to climb past the already-regressed level trips.
		{"compounding regression", []float64{100, 130, 150}, 1},
		{"single point", []float64{100}, 0},
		{"two points regressed", []float64{100, 120}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := gateCount(t, trendOf(tc.ns...)); got != tc.want {
				t.Errorf("history %v: %d regressions, want %d", tc.ns, got, tc.want)
			}
		})
	}
}

func TestBenchGateAllocs(t *testing.T) {
	trends := trendOf(100, 100, 100)
	trends[0].points[2].allocs = 50 // 10 → 50 allocs at the latest point
	if got := gateCount(t, trends); got != 1 {
		t.Errorf("alloc growth not gated: %d regressions, want 1", got)
	}
}

func TestLoadTrendsMergesAndOrders(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f benchFile) string {
		t.Helper()
		raw, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Two files, dates interleaved, one smoke series to ignore.
	a := write("BENCH_A.json", benchFile{Schema: "gpp-bench-perf/v1", Series: []benchSeries{
		{Label: "one", Date: "2026-01-01T00:00:00Z",
			Benchmarks: []benchPoint{{Name: "B", NsPerIter: 100, AllocsPerOp: 5}}},
		{Label: "three", Date: "2026-03-01T00:00:00Z",
			Benchmarks: []benchPoint{{Name: "B", NsPerIter: 120, AllocsPerOp: 5}}},
	}})
	b := write("BENCH_B.json", benchFile{Schema: "gpp-bench-perf/v1", Series: []benchSeries{
		{Label: "two", Date: "2026-02-01T00:00:00Z",
			Benchmarks: []benchPoint{{Name: "B", NsPerIter: 110, AllocsPerOp: 5}}},
		{Label: "smoke", Date: "2026-04-01T00:00:00Z", Smoke: true,
			Benchmarks: []benchPoint{{Name: "B", NsPerIter: 9999, AllocsPerOp: 999}}},
	}})
	trends, err := loadTrends([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 1 || trends[0].name != "B" {
		t.Fatalf("trends = %+v", trends)
	}
	var labels []string
	for _, p := range trends[0].points {
		labels = append(labels, p.label)
	}
	if strings.Join(labels, ",") != "one,two,three" {
		t.Fatalf("series order = %v, want date order with smoke skipped", labels)
	}
}

// TestLoadTrendsDedupesLedgerOverlap: the merged BENCH.json ledger carries
// the same series as the per-PR files it was built from; reading both must
// count each (label, date) series once, with the first-listed file winning.
func TestLoadTrendsDedupesLedgerOverlap(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f benchFile) string {
		t.Helper()
		raw, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	one := benchSeries{Label: "one", Date: "2026-01-01T00:00:00Z",
		Benchmarks: []benchPoint{{Name: "B", NsPerIter: 100, AllocsPerOp: 5}}}
	two := benchSeries{Label: "two", Date: "2026-02-01T00:00:00Z",
		Benchmarks: []benchPoint{{Name: "B", NsPerIter: 110, AllocsPerOp: 5}}}
	ledger := write("BENCH.json", benchFile{Schema: "gpp-bench-perf/v1",
		Series: []benchSeries{one, two}})
	perPR := write("BENCH_PR1.json", benchFile{Schema: "gpp-bench-perf/v1",
		Series: []benchSeries{one}})
	trends, err := loadTrends([]string{ledger, perPR})
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 1 || len(trends[0].points) != 2 {
		t.Fatalf("expected 1 trend with 2 deduped points, got %+v", trends)
	}
	// Same label at a different date is a distinct measurement, not a dupe.
	oneLater := one
	oneLater.Date = "2026-03-01T00:00:00Z"
	relabel := write("BENCH_PR2.json", benchFile{Schema: "gpp-bench-perf/v1",
		Series: []benchSeries{oneLater}})
	trends, err = loadTrends([]string{ledger, perPR, relabel})
	if err != nil {
		t.Fatal(err)
	}
	if len(trends[0].points) != 3 {
		t.Fatalf("same label at new date was deduped: %+v", trends[0].points)
	}
}

func TestLoadTrendsRejectsUnknownSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_X.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrends([]string{path}); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
