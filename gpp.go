// Package gpp is the public facade of the ground-plane-partitioning
// library, a reproduction of Katam, Zhang and Pedram, "Ground Plane
// Partitioning for Current Recycling of Superconducting Circuits"
// (DATE 2020).
//
// Large single-flux-quantum (SFQ) circuits need tens of amperes of bias
// current; current recycling slashes the external supply by splitting the
// circuit across K serially-biased ground planes. This package partitions a
// gate-level SFQ netlist into K planes by gradient descent on the paper's
// relaxed cost function, evaluates the partition with the paper's metrics
// (inter-plane connection distances, bias compensation I_comp, free area
// A_FS), and plans the physical realization (inductive coupler chains and
// dummy bias structures).
//
// Typical use:
//
//	circuit, _ := gpp.Benchmark("KSA8")       // or build/parse your own
//	res, _ := gpp.Partition(circuit, 5, gpp.Options{})
//	fmt.Println(res.Metrics.DistLEPct(1))     // % same/adjacent-plane wires
//	plan, _ := gpp.PlanRecycling(circuit, res)
//	fmt.Println(plan.SupplyCurrent, plan.SavedCurrent())
//
// The heavy lifting lives in the internal packages (netlist model, cell
// library, DEF/LEF I/O, generators, SFQ mapper, solver, baselines,
// recycling planner); this package re-exports the types a downstream user
// needs and wires the common flows together.
package gpp

import (
	"context"
	"fmt"
	"io"

	"gpp/internal/cellib"
	"gpp/internal/def"
	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
	"gpp/internal/recycle"
	"gpp/internal/terms"
)

// Re-exported core types. The aliases keep one canonical definition while
// letting users stay within the gpp package.
type (
	// Circuit is a gate-level SFQ netlist (gates with bias/area, directed
	// point-to-point connections).
	Circuit = netlist.Circuit
	// Gate is one cell instance of a Circuit.
	Gate = netlist.Gate
	// Options configures the gradient-descent solver (Algorithm 1).
	Options = partition.Options
	// Coeffs are the cost-function constants c1..c4.
	Coeffs = partition.Coeffs
	// Metrics are the paper's partition-quality measures.
	Metrics = recycle.Metrics
	// Plan is a physical current-recycling realization of a partition.
	Plan = recycle.Plan
	// Library is an SFQ standard-cell library.
	Library = cellib.Library
	// GateID identifies a gate within a Circuit.
	GateID = netlist.GateID
	// Edge is one directed connection of a Circuit.
	Edge = netlist.Edge
)

// Result bundles a partition with its quality metrics.
type Result struct {
	// K is the plane count.
	K int
	// Labels assigns every gate a plane in [0, K).
	Labels []int
	// Metrics are the paper's quality measures for this partition.
	Metrics *Metrics
	// Iters is the number of gradient iterations used; Converged reports
	// whether the relative-margin stop (rather than the cap) ended them.
	Iters     int
	Converged bool
}

// DefaultLibrary returns the built-in SFQ cell library.
func DefaultLibrary() *Library { return cellib.Default() }

// Partition splits the circuit into k serially-biasable ground planes with
// the paper's gradient-descent algorithm.
func Partition(c *Circuit, k int, opts Options) (*Result, error) {
	return PartitionCtx(context.Background(), c, k, opts)
}

// PartitionCtx is Partition with cooperative cancellation: the solver
// checks ctx once per gradient iteration, so a deadline or cancel stops
// the descent within one iteration. This is the path the serve daemon
// uses to enforce per-job deadlines.
func PartitionCtx(ctx context.Context, c *Circuit, k int, opts Options) (*Result, error) {
	// The term registry builds the problem: with Options.Terms empty this
	// is exactly the historical FromCircuit path; named regime terms
	// (xesfq, current_limit, timing_critical, or user-registered ones)
	// reshape the compiled problem first.
	p, opts, err := terms.BuildProblem(c, k, opts, nil)
	if err != nil {
		return nil, err
	}
	res, err := p.SolveCtx(ctx, opts)
	if err != nil {
		return nil, err
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		return nil, err
	}
	return &Result{K: k, Labels: res.Labels, Metrics: m, Iters: res.Iters, Converged: res.Converged}, nil
}

// PlanRecycling turns a partition result into a physical current-recycling
// plan: coupler chains for every inter-plane connection, dummy bias
// structures equalizing per-plane current draw, and the resulting external
// supply requirement.
func PlanRecycling(c *Circuit, res *Result) (*Plan, error) {
	return PlanRecyclingCtx(context.Background(), c, res)
}

// PlanRecyclingCtx is PlanRecycling under a context. Plan construction is
// a single pass (no iteration to interrupt), so the context is checked at
// entry: an already-expired deadline fails fast instead of building a
// plan nobody will read.
func PlanRecyclingCtx(ctx context.Context, c *Circuit, res *Result) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gpp: plan recycling: %w", err)
	}
	p, err := partition.FromCircuit(c, res.K)
	if err != nil {
		return nil, err
	}
	return recycle.BuildPlan(c, p, res.Labels, recycle.PlanOptions{})
}

// Evaluate computes the paper's metrics for an externally produced
// labeling (labels are 0-based planes).
func Evaluate(c *Circuit, k int, labels []int) (*Metrics, error) {
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, err
	}
	return recycle.Evaluate(p, labels)
}

// Benchmark generates one circuit of the paper's benchmark suite by name
// (KSA4/8/16/32, MULT4/8, ID4/8, C432, C499, C1355, C1908, C3540).
func Benchmark(name string) (*Circuit, error) {
	return gen.Benchmark(name, nil)
}

// BenchmarkNames lists the paper's Table I suite in table order.
func BenchmarkNames() []string {
	out := make([]string, len(gen.BenchmarkNames))
	copy(out, gen.BenchmarkNames)
	return out
}

// Suite generates the full benchmark suite.
func Suite() ([]*Circuit, error) { return gen.Suite(nil) }

// WriteDEF emits the circuit as a placed DEF design using the default
// library's geometry.
func WriteDEF(w io.Writer, c *Circuit) error {
	return def.Write(w, c, nil)
}

// ReadDEF parses a DEF design and resolves cells against the default
// library.
func ReadDEF(r io.Reader) (*Circuit, error) {
	d, err := def.Parse(r)
	if err != nil {
		return nil, err
	}
	return def.ToCircuit(d, nil)
}

// MinimumPlanes returns the lower bound K_LB = ⌈B_cir/limit⌉ on the number
// of planes needed so that no plane exceeds the supply limit (in mA).
func MinimumPlanes(c *Circuit, limitMA float64) (int, error) {
	if limitMA <= 0 {
		return 0, fmt.Errorf("gpp: supply limit must be positive, got %g", limitMA)
	}
	total := c.TotalBias()
	k := int(total / limitMA)
	if float64(k)*limitMA < total {
		k++
	}
	if k < 1 {
		k = 1
	}
	return k, nil
}
