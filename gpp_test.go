package gpp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFacadePartitionFlow(t *testing.T) {
	circuit, err := Benchmark("KSA4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(circuit, 5, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 5 || len(res.Labels) != circuit.NumGates() {
		t.Fatalf("result shape: K=%d labels=%d", res.K, len(res.Labels))
	}
	if res.Metrics == nil || res.Metrics.BMax <= 0 {
		t.Fatal("metrics missing")
	}
	if err := res.Metrics.BalanceCheck(); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanRecycling(circuit, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.SupplyCurrent <= 0 {
		t.Error("plan has no supply current")
	}
}

func TestFacadeEvaluateMatchesPartitionMetrics(t *testing.T) {
	circuit, err := Benchmark("KSA4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(circuit, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(circuit, 4, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.BMax-res.Metrics.BMax) > 1e-12 || m.DistHist[0] != res.Metrics.DistHist[0] {
		t.Error("Evaluate disagrees with Partition metrics")
	}
}

func TestFacadeDEFRoundTrip(t *testing.T) {
	circuit, err := Benchmark("KSA4")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDEF(&buf, circuit); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDEF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumGates() != circuit.NumGates() || got.NumEdges() != circuit.NumEdges() {
		t.Errorf("round trip: %d/%d gates, %d/%d edges",
			got.NumGates(), circuit.NumGates(), got.NumEdges(), circuit.NumEdges())
	}
	if math.Abs(got.TotalBias()-circuit.TotalBias()) > 1e-9 {
		t.Error("bias lost in round trip")
	}
}

func TestMinimumPlanes(t *testing.T) {
	circuit, err := Benchmark("KSA8") // ~164 mA
	if err != nil {
		t.Fatal(err)
	}
	k, err := MinimumPlanes(circuit, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := int(circuit.TotalBias()/100) + 1
	if float64(want-1)*100 == circuit.TotalBias() {
		want--
	}
	if k != want {
		t.Errorf("MinimumPlanes = %d, want %d", k, want)
	}
	if _, err := MinimumPlanes(circuit, 0); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := MinimumPlanes(circuit, -3); err == nil {
		t.Error("negative limit accepted")
	}
}

func TestBenchmarkNamesCopied(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 13 {
		t.Fatalf("%d names, want 13", len(names))
	}
	names[0] = "MUTATED"
	if BenchmarkNames()[0] == "MUTATED" {
		t.Error("BenchmarkNames exposes internal slice")
	}
}

func TestBenchmarkUnknown(t *testing.T) {
	if _, err := Benchmark("KSA99"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("err = %v", err)
	}
}

func TestDefaultLibrary(t *testing.T) {
	lib := DefaultLibrary()
	if lib.Len() == 0 {
		t.Fatal("empty default library")
	}
	if _, ok := lib.ByName("SPLIT"); !ok {
		t.Error("SPLIT missing from default library")
	}
}

func TestSuiteGeneratesAll(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation in -short mode")
	}
	suite, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 13 {
		t.Fatalf("suite has %d circuits", len(suite))
	}
}

func TestPartitionErrors(t *testing.T) {
	circuit, err := Benchmark("KSA4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(circuit, 1, Options{}); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := Partition(circuit, circuit.NumGates()+1, Options{}); err == nil {
		t.Error("K>G accepted")
	}
}
