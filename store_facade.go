package gpp

import (
	"os"

	"gpp/internal/partition"
	"gpp/internal/store"
)

// Durability facade: the on-disk primitives behind gpp-serve's -data-dir
// and gpp-partition's -checkpoint/-resume, re-exported so embedded users
// can persist results and snapshots with the same crash-safety
// guarantees (atomic replace, CRC-framed records, fsync before rename).

type (
	// Store is a durable state directory: a content-addressed blob store
	// plus the path reserved for a write-ahead journal.
	Store = store.Store
	// Blobs is a content-addressed blob store (sha256 keys, CRC-framed
	// files, atomic writes, mtime-ordered garbage collection).
	Blobs = store.Blobs
	// Snapshot is a versioned solver checkpoint: the full descent state
	// at an iteration boundary, restorable into a solve that finishes
	// bitwise identical to an uninterrupted run.
	Snapshot = partition.Snapshot
)

// OpenStore opens (creating as needed) a durable state directory.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// EncodeSnapshot serializes a solver checkpoint into its versioned,
// CRC-guarded binary form.
func EncodeSnapshot(s *Snapshot) []byte { return partition.EncodeSnapshot(s) }

// DecodeSnapshot parses and validates an EncodeSnapshot payload,
// rejecting version or checksum mismatches and malformed shapes.
func DecodeSnapshot(raw []byte) (*Snapshot, error) { return partition.DecodeSnapshot(raw) }

// WriteFileAtomic durably replaces path with a CRC-framed record
// containing data: write to a temp file in the same directory, fsync,
// rename, fsync the directory. Read it back with ReadFileChecked.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return store.WriteFileAtomic(path, data, perm)
}

// ReadFileChecked reads a WriteFileAtomic file, verifying the frame
// checksum before returning the payload.
func ReadFileChecked(path string) ([]byte, error) { return store.ReadFileChecked(path) }
